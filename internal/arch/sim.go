package arch

import (
	"math"

	"athena/internal/compiler"
)

// Result is the outcome of simulating one trace on one configuration.
type Result struct {
	Config string
	Model  string

	Cycles  float64
	TimeMS  float64
	EnergyJ float64
	EDP     float64 // J·s
	EDAPmm2 float64 // J·s·mm²

	// TimeByCat splits execution time across the Fig. 9 buckets (ms).
	TimeByCat map[compiler.Category]float64
	// EnergyByUnit splits energy across Fig. 10 contributors (J).
	EnergyByUnit map[string]float64
	// MACCycleShare is the fraction of compute cycles spent on MM/MA
	// work (the Fig. 8 observation on foreign accelerators).
	MACCycleShare float64
}

// stepCost is the priced form of one trace step.
type stepCost struct {
	cycles             float64
	macCycles          float64
	macs, butterflies  float64
	autoElems, seElems float64
	hbmBytes, spmBytes float64
}

// Simulate prices a compiled trace on cfg. The unit formulas:
//
//	limb-NTT:      (N/NTTLanes)·ceil(log2 N / 3) cycles (radix-8, §4.2.1)
//	pointwise MAC: macs / (FRULanes·blocks) cycles
//	automorphism:  elements / AutoLanes cycles (index-mapped, §4.2.1)
//	SE:            extractions·(n+1)/SELanes/… ≈ 1 elem/cycle/lane (§4.2.3)
//	HBM/SPM:       bytes / bytes-per-cycle, overlapped with compute
//	FBS:           max(region-1 SMult/HAdd time, region-0 CMult time)
//	               per the Fig. 7 two-region pipeline
func Simulate(tr *compiler.Trace, cfg Config) *Result {
	p := tr.Params
	n := 1 << p.LogN
	limbs := p.QiNum
	ctBytes := float64(2 * n * limbs * 8)
	keyBytes := float64(cfg.DNum*n*limbs*8) * 2 / 2 // PRNG halves the stored key

	nttCyclesPerLimb := float64(n) / float64(cfg.NTTLanes) * math.Ceil(float64(p.LogN)/3)
	bflPerLimb := float64(n) / 2 * float64(p.LogN)
	allFRULanes := float64(cfg.FRULanes) * float64(cfg.FRUBlocksR1+1)

	res := &Result{
		Config:       cfg.Name,
		Model:        tr.Model,
		TimeByCat:    map[compiler.Category]float64{},
		EnergyByUnit: map[string]float64{},
	}

	var totMacs, totBfl, totAuto, totSE, totHBM, totSPM float64
	var totCycles, totMacCycles, totCompute float64

	// Relinearization key is scratchpad-resident: stream it once.
	setupHBM := keyBytes
	totHBM += setupHBM
	totCycles += setupHBM / cfg.HBMBytesPerCycle

	for _, s := range tr.Steps {
		c := priceStep(s, p.LogN, limbs, int(p.LWEDim), cfg, nttCyclesPerLimb, bflPerLimb, allFRULanes, ctBytes, keyBytes)
		memCycles := c.hbmBytes/cfg.HBMBytesPerCycle + c.spmBytes/cfg.SPMBytesPerCycle
		stepCycles := math.Max(c.cycles, memCycles) // double-buffered overlap
		totCycles += stepCycles
		totCompute += c.cycles
		totMacCycles += c.macCycles
		totMacs += c.macs
		totBfl += c.butterflies
		totAuto += c.autoElems
		totSE += c.seElems
		totHBM += c.hbmBytes
		totSPM += c.spmBytes
		res.TimeByCat[s.Cat] += stepCycles / (cfg.FreqGHz * 1e6) // ms
	}

	res.Cycles = totCycles
	res.TimeMS = totCycles / (cfg.FreqGHz * 1e6)
	if totCompute > 0 {
		res.MACCycleShare = totMacCycles / totCompute
	}

	timeSec := res.TimeMS / 1e3
	res.EnergyByUnit["FRU"] = totMacs * cfg.MacPJ * 1e-12
	res.EnergyByUnit["NTT"] = totBfl * cfg.NTTBflPJ * 1e-12
	res.EnergyByUnit["Automorphism"] = totAuto * cfg.AutoPJ * 1e-12
	res.EnergyByUnit["SE"] = totSE * cfg.SEPJ * 1e-12
	res.EnergyByUnit["HBM"] = totHBM * cfg.HBMPJB * 1e-12
	res.EnergyByUnit["SPM"] = totSPM * cfg.SPMPJB * 1e-12
	res.EnergyByUnit["Static"] = timeSec * cfg.StaticW
	for _, e := range res.EnergyByUnit {
		res.EnergyJ += e
	}
	res.EDP = res.EnergyJ * timeSec
	area, _ := TotalAreaPower()
	res.EDAPmm2 = res.EDP * area
	return res
}

// priceStep converts one step's op counts into unit work.
func priceStep(s compiler.Step, logN, limbs, lweDim int, cfg Config,
	nttCyc, bflPerLimb, allFRULanes, ctBytes, keyBytes float64) stepCost {

	n := float64(int(1) << logN)
	l := float64(limbs)
	var c stepCost

	// Primitive building blocks.
	pmultMacs := 2 * n * l // two polys, pointwise
	// Tensor products (4 pointwise multiplies in the ~2L-limb extended
	// basis ≈ 16·n·l), the scale-and-round RNS base conversions
	// (≈ 10·n·l), and the relinearization inner products (dnum·n·l) —
	// all on the FRU's MM/MA cascade.
	cmultMacs := 26*n*l + float64(cfg.DNum)*n*l + float64(cfg.DNum)*n*l
	// Lazy relinearization (once per giant-step group), amortized power
	// reuse, and radix-8 iteration fusion bring the NTT work per CMult
	// to ~2·L limb-NTTs; the FRU MAC stream is then the region-0
	// bottleneck at full width.
	cmultNTTs := 2 * l
	// Hoisted decomposition: BSGS rotation groups decompose the operand
	// once and reuse the digits across keys, amortizing the NTT work per
	// rotation to ~L limb-NTTs.
	ksNTTs := l
	ksMacs := float64(cfg.DNum) * n * l

	addMac := func(macs float64, lanes float64) {
		cyc := macs / lanes
		c.cycles += cyc
		c.macCycles += cyc
		c.macs += macs
	}
	addNTT := func(count float64) {
		c.cycles += count * nttCyc
		c.butterflies += count * bflPerLimb
	}

	switch s.Kind {
	case compiler.KFBS:
		// Two-region pipeline: the SMult stream runs on region 1 while the
		// CMult chain runs on region 0. Each FRU block has 2048 MMs AND
		// 2048 MAs cascaded (§4.2.2), so the inner-sum additions fuse into
		// the multiply passes: region-1 time is the multiply stream alone.
		// The region split is sized so region 0 binds at the full t-sized
		// LUT, giving FBS its O(√t) scaling (Table 3).
		r1Macs := float64(s.Counts.SMult)*pmultMacs + float64(s.Counts.HAdd)*pmultMacs
		r1Cycles := float64(s.Counts.SMult) * pmultMacs / (float64(cfg.FRULanes) * float64(cfg.FRUBlocksR1))

		// Within region 0 the NTT unit and the FRU pipeline across the
		// CMult chain (fully pipelined radix-8 cores, §4.2.1); the MM+MA
		// cascade doubles the region-0 MAC throughput.
		r0NTT := float64(s.Counts.CMult) * cmultNTTs * nttCyc
		r0Macs := float64(s.Counts.CMult) * cmultMacs
		r0Cycles := math.Max(r0NTT, r0Macs/(2*float64(cfg.FRULanes)))

		if cfg.SerializeFBSRegions {
			c.cycles = r1Cycles + r0Cycles // ablation: no overlap
		} else {
			c.cycles = math.Max(r1Cycles, r0Cycles)
		}
		c.macCycles = math.Min(r1Cycles, c.cycles) // MM/MA-bound share
		c.macs = r1Macs + r0Macs
		c.butterflies = float64(s.Counts.CMult) * cmultNTTs * bflPerLimb
		// Relin key is resident; baby powers live in the register files,
		// so the streamed working set per op is a fraction of a
		// ciphertext.
		c.spmBytes = float64(s.Counts.CMult+s.Counts.SMult+s.Counts.HAdd) * ctBytes / 8
		return c

	case compiler.KLinear:
		addMac(float64(s.Counts.PMult)*pmultMacs+float64(s.Counts.HAdd)*pmultMacs, allFRULanes)
		// Kernel plaintexts stream from HBM (precomputed NTT form).
		c.hbmBytes = float64(s.Counts.PMult) * (n * l * 8)
		c.spmBytes = float64(s.Counts.PMult+s.Counts.HAdd) * ctBytes / 2
		return c

	case compiler.KPack:
		addMac(float64(s.Counts.PMult)*pmultMacs+float64(s.Counts.HAdd)*pmultMacs,
			float64(cfg.FRULanes)*float64(cfg.FRUBlocksR1))
		// Rotations: automorphism + keyswitch, with rotation keys
		// streamed from HBM (amortized 1/2 by reuse across groups).
		rot := float64(s.Counts.HRot)
		c.autoElems += rot * n * l
		c.cycles += 2 * rot * n * l / float64(cfg.AutoLanes) // 2(l+N/l) index map
		addNTT(rot * ksNTTs)
		addMac(rot*ksMacs, float64(cfg.FRULanes))
		// PRNG regeneration and cross-call caching of the hot BSGS keys
		// quarter the streamed key bytes.
		c.hbmBytes += rot * keyBytes / 4
		// The packed LWE matrix is read as plaintext diagonals.
		c.spmBytes += float64(s.Counts.PMult) * (float64(lweDim+1) * 8)
		return c

	case compiler.KS2C:
		addMac(float64(s.Counts.PMult)*pmultMacs, allFRULanes)
		rot := float64(s.Counts.HRot)
		c.autoElems += rot * n * l
		c.cycles += 2 * rot * n * l / float64(cfg.AutoLanes)
		addNTT(rot * ksNTTs)
		addMac(rot*ksMacs, float64(cfg.FRULanes))
		c.hbmBytes += rot * keyBytes / 4
		return c

	case compiler.KSE:
		// Modulus switch + ring degree switch per result ciphertext,
		// then one extraction per value on the SE unit.
		ks := float64(s.Counts.KeySwitch)
		addNTT(ks * (ksNTTs + 2*l))
		addMac(ks*(ksMacs+2*n*l), allFRULanes)
		c.hbmBytes += ks * keyBytes
		se := float64(s.Counts.SE)
		c.seElems = se
		c.cycles += se / float64(cfg.SELanes)
		c.spmBytes += se * float64(lweDim+1) * 8
		return c

	case compiler.KLWEAdd:
		macs := float64(s.Counts.LWEAdd) * float64(lweDim+1)
		addMac(macs, allFRULanes)
		c.spmBytes = 2 * macs * 8
		return c
	}
	return c
}
