// Package arch is the cycle-accounting simulator of the Athena
// accelerator (Section 4) and its baselines: per-unit latency models for
// the NTT, automorphism, sample-extraction, and FRU units, the
// two-region FBS dataflow of Fig. 7, HBM/scratchpad traffic, and
// activity-based energy on top of the Table 9 area/power model.
//
// The paper evaluates with "a cycle-level simulator" driven by
// synthesized component characteristics; this package plays that role,
// with unit cost formulas documented inline and two calibration
// constants (MAC energy, HBM energy) fitted so the Table 9 power
// envelope and the ResNet-20 operating point land on the published
// values. All relative results (across models, quantization modes,
// lane counts, and foreign accelerators) follow from the model.
package arch

// Config describes one accelerator instance.
type Config struct {
	Name string

	// Per-unit lane counts (Fig. 13 scales them independently).
	NTTLanes  int // total butterfly lanes (256 radix-8 cores = 2048)
	FRULanes  int // lanes per FRU block
	AutoLanes int // total automorphism element throughput per cycle
	SELanes   int // extractions started per cycle

	FRUBlocksR1 int // region-1 FRU blocks (16)
	FreqGHz     float64

	HBMBytesPerCycle float64 // 1 TB/s at 1 GHz = 1000 B/cycle
	SPMBytesPerCycle float64 // 180 TB/s = 180000 B/cycle
	ScratchpadMB     float64

	// Keyswitching decomposition arms (key size and work factor).
	DNum int

	// SerializeFBSRegions disables the Fig. 7 two-region overlap
	// (ablation: regions run back to back instead of pipelined).
	SerializeFBSRegions bool

	// Energy constants.
	MacPJ    float64 // per modular multiply-accumulate
	NTTBflPJ float64 // per butterfly
	AutoPJ   float64 // per element moved by the automorphism unit
	SEPJ     float64 // per extracted element
	HBMPJB   float64 // per HBM byte
	SPMPJB   float64 // per scratchpad byte
	StaticW  float64 // clock tree + leakage + NoC baseline
}

// AthenaConfig returns the paper's accelerator (Section 4/Table 9).
func AthenaConfig() Config {
	return Config{
		Name:             "Athena",
		NTTLanes:         2048,
		FRULanes:         2048,
		AutoLanes:        2048,
		SELanes:          2,
		FRUBlocksR1:      16,
		FreqGHz:          1.0,
		HBMBytesPerCycle: 1000,
		SPMBytesPerCycle: 180000,
		ScratchpadMB:     45,
		DNum:             3,
		MacPJ:            0.9,
		NTTBflPJ:         1.1,
		AutoPJ:           0.25,
		SEPJ:             0.3,
		HBMPJB:           42,
		SPMPJB:           0.75,
		StaticW:          18,
	}
}

// AreaRow is one line of Table 9.
type AreaRow struct {
	Component string
	AreaMM2   float64
	PowerW    float64
}

// Table9 returns the Athena accelerator's area/power breakdown at 1 GHz
// in 7 nm (the paper's synthesis results, reproduced as the simulator's
// static model).
func Table9() []AreaRow {
	return []AreaRow{
		{"Automorphism", 3.8, 3.0},
		{"PRNG", 1.2, 1.9},
		{"NTT", 4.51, 3.9},
		{"SE", 0.32, 0.94},
		{"FRU", 42.6, 89.1},
		{"NoC", 5.9, 7.8},
		{"Register Files (15MB)", 8.4, 4.9},
		{"Scratchpad SRAM (45MB)", 20.1, 4.8},
		{"HBM (2x HBM2E)", 29.6, 31.8},
	}
}

// TotalAreaPower sums Table 9.
func TotalAreaPower() (areaMM2, powerW float64) {
	for _, r := range Table9() {
		areaMM2 += r.AreaMM2
		powerW += r.PowerW
	}
	return
}

// ScaledArea returns the accelerator area when every compute unit's
// lanes scale by factor (memory and HBM stay fixed) — the Fig. 13 EDAP
// denominator.
func ScaledArea(factor float64) float64 {
	var area float64
	for _, r := range Table9() {
		switch r.Component {
		case "Automorphism", "NTT", "SE", "FRU", "PRNG":
			area += r.AreaMM2 * factor
		default:
			area += r.AreaMM2
		}
	}
	return area
}

// MemRow is one line of Table 8 (memory-related comparison).
type MemRow struct {
	Accelerator  string
	HBMCapGB     float64
	HBMBWTBs     float64
	ScratchpadMB float64
	ScratchBWTBs float64
}

// Table8 returns the paper's memory comparison. The scratchpad figures
// for the baselines are their published configurations.
func Table8() []MemRow {
	return []MemRow{
		{"CraterLake", 16, 1, 256 + 26, 84},
		{"ARK", 16, 1, 512 + 76, 92},
		{"BTS", 16, 1, 512 + 22, 330},
		{"SHARP", 16, 1, 180 + 18, 72},
		{"Athena", 16, 1, 45 + 15, 180},
	}
}

// RequiredSPMBandwidth derives the scratchpad bandwidth the FRU array
// demands (Table 8's 180 TB/s): in the FBS steady state every region-1
// lane consumes one fresh operand word per cycle (the second operand and
// the accumulator live in the register files), across 17 blocks at the
// configured frequency, with the empirically ~35% stall share of the
// two-region pipeline removed.
func RequiredSPMBandwidth(cfg Config) float64 {
	lanes := float64(cfg.FRULanes) * float64(cfg.FRUBlocksR1+1)
	bytesPerCycle := lanes * 8                              // one uint64 operand per MAC
	const utilization = 0.65                                // region handoff + drain stalls
	return bytesPerCycle * cfg.FreqGHz * utilization / 1000 // TB/s
}
