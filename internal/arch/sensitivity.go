package arch

import (
	"fmt"

	"athena/internal/compiler"
)

// Unit names for the Fig. 13 sensitivity sweep.
const (
	UnitNTT  = "NTT"
	UnitFRU  = "FRU"
	UnitAuto = "Automorphism"
	UnitSE   = "SE"
)

// SensitivityUnits lists the swept units in the paper's order.
var SensitivityUnits = []string{UnitNTT, UnitFRU, UnitAuto, UnitSE}

// ScaledConfig returns the Athena configuration with one unit's lanes
// scaled to `lanes` (256..2048 in the paper's sweep), all else fixed.
func ScaledConfig(unit string, lanes int) (Config, error) {
	cfg := AthenaConfig()
	cfg.Name = fmt.Sprintf("Athena[%s=%d]", unit, lanes)
	switch unit {
	case UnitNTT:
		cfg.NTTLanes = lanes
	case UnitFRU:
		cfg.FRULanes = lanes
	case UnitAuto:
		cfg.AutoLanes = lanes
	case UnitSE:
		// SE starts 2 extractions/cycle at 2048 "lanes"; scale
		// proportionally with a floor of one per 1024 cycles.
		cfg.SELanes = lanes / 1024
		if cfg.SELanes < 1 {
			cfg.SELanes = 1
		}
	default:
		return Config{}, fmt.Errorf("arch: unknown unit %q", unit)
	}
	return cfg, nil
}

// SensPoint is one point of the Fig. 13 sweep, normalized to the
// full-width (2048-lane) configuration.
type SensPoint struct {
	Unit   string
	Lanes  int
	Delay  float64 // relative to 2048 lanes
	Energy float64
	EDP    float64
	EDAP   float64
}

// LaneSensitivity sweeps one unit's lanes over the given points for a
// trace, normalizing each metric to the full configuration. EDAP uses
// the area scaled by the lane factor for the swept unit.
func LaneSensitivity(tr *compiler.Trace, unit string, lanePoints []int) ([]SensPoint, error) {
	base := Simulate(tr, AthenaConfig())
	out := make([]SensPoint, 0, len(lanePoints))
	for _, lanes := range lanePoints {
		cfg, err := ScaledConfig(unit, lanes)
		if err != nil {
			return nil, err
		}
		r := Simulate(tr, cfg)
		// Area: only the swept unit shrinks.
		factor := float64(lanes) / 2048
		area := 0.0
		for _, row := range Table9() {
			if row.Component == unit {
				area += row.AreaMM2 * factor
			} else {
				area += row.AreaMM2
			}
		}
		baseArea, _ := TotalAreaPower()
		out = append(out, SensPoint{
			Unit:   unit,
			Lanes:  lanes,
			Delay:  r.TimeMS / base.TimeMS,
			Energy: r.EnergyJ / base.EnergyJ,
			EDP:    r.EDP / base.EDP,
			EDAP:   (r.EDP * area) / (base.EDP * baseArea),
		})
	}
	return out, nil
}
