package coeffenc

import (
	"math"
	"math/rand/v2"
	"testing"
)

// refConv is the direct convolution oracle with zero padding.
func refConv(s ConvShape, m [][][]int64, k [][][][]int64) [][][]int64 {
	out := make([][][]int64, s.Cout)
	for co := range out {
		out[co] = make([][]int64, s.OutH())
		for y := range out[co] {
			out[co][y] = make([]int64, s.OutW())
			for x := range out[co][y] {
				var acc int64
				for ci := 0; ci < s.Cin; ci++ {
					for i := 0; i < s.K; i++ {
						for j := 0; j < s.K; j++ {
							h := y*s.Stride + i - s.Pad
							w := x*s.Stride + j - s.Pad
							if h < 0 || h >= s.H || w < 0 || w >= s.W {
								continue
							}
							acc += m[ci][h][w] * k[co][ci][i][j]
						}
					}
				}
				out[co][y][x] = acc
			}
		}
	}
	return out
}

func randTensor3(c, h, w int, seed uint64) [][][]int64 {
	rng := rand.New(rand.NewPCG(seed, 0))
	m := make([][][]int64, c)
	for i := range m {
		m[i] = make([][]int64, h)
		for j := range m[i] {
			m[i][j] = make([]int64, w)
			for l := range m[i][j] {
				m[i][j][l] = int64(rng.Uint64N(15)) - 7
			}
		}
	}
	return m
}

func randTensor4(co, ci, k int, seed uint64) [][][][]int64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	m := make([][][][]int64, co)
	for a := range m {
		m[a] = make([][][]int64, ci)
		for b := range m[a] {
			m[a][b] = make([][]int64, k)
			for c := range m[a][b] {
				m[a][b][c] = make([]int64, k)
				for d := range m[a][b][c] {
					m[a][b][c][d] = int64(rng.Uint64N(15)) - 7
				}
			}
		}
	}
	return m
}

func checkShape(t *testing.T, s ConvShape, n int, strat Strategy) *Plan {
	t.Helper()
	p, err := NewPlan(s, n, strat)
	if err != nil {
		t.Fatalf("%+v %v: %v", s, strat, err)
	}
	m := randTensor3(s.Cin, s.H, s.W, 7)
	k := randTensor4(s.Cout, s.Cin, s.K, 8)
	want := refConv(s, m, k)

	res := p.Execute(m, k)
	if len(res) != p.OutBatches {
		t.Fatalf("result count %d want %d", len(res), p.OutBatches)
	}
	got := make([][][]int64, s.Cout)
	for co := range got {
		got[co] = make([][]int64, s.OutH())
		for y := range got[co] {
			got[co][y] = make([]int64, s.OutW())
		}
	}
	for ob := 0; ob < p.OutBatches; ob++ {
		p.Decode(res[ob], ob, got)
	}
	for co := range want {
		for y := range want[co] {
			for x := range want[co][y] {
				if got[co][y][x] != want[co][y][x] {
					t.Fatalf("%+v %v out[%d][%d][%d]: got %d want %d",
						s, strat, co, y, x, got[co][y][x], want[co][y][x])
				}
			}
		}
	}
	return p
}

func TestConvMatchesReference(t *testing.T) {
	shapes := []ConvShape{
		{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 0},
		{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1},
		{H: 8, W: 8, Cin: 3, Cout: 4, K: 3, Stride: 1, Pad: 1},
		{H: 8, W: 8, Cin: 2, Cout: 2, K: 5, Stride: 1, Pad: 2},
		{H: 8, W: 8, Cin: 4, Cout: 8, K: 1, Stride: 2, Pad: 0},
		{H: 9, W: 7, Cin: 2, Cout: 3, K: 3, Stride: 2, Pad: 1},
		{H: 5, W: 5, Cin: 6, Cout: 6, K: 3, Stride: 1, Pad: 1},
	}
	for _, s := range shapes {
		for _, strat := range []Strategy{AthenaOrder, CheetahOrder} {
			checkShape(t, s, 4096, strat)
		}
	}
}

func TestConvBatchedAcrossCiphertexts(t *testing.T) {
	// Small N forces multiple input and output batches.
	s := ConvShape{H: 8, W: 8, Cin: 8, Cout: 8, K: 3, Stride: 1, Pad: 1}
	p := checkShape(t, s, 1024, AthenaOrder)
	if p.InBatches < 2 && p.OutBatches < 2 {
		t.Fatalf("expected batching at N=1024, got in=%d out=%d", p.InBatches, p.OutBatches)
	}
	pm, ha := p.Counts()
	if pm != p.InBatches*p.OutBatches {
		t.Fatalf("PMult count %d", pm)
	}
	if ha != (p.InBatches-1)*p.OutBatches {
		t.Fatalf("HAdd count %d", ha)
	}
}

func TestFCLayer(t *testing.T) {
	s := FCShape(64, 10)
	p := checkShape(t, s, 1024, AthenaOrder)
	if p.Shape.Outputs() != 10 {
		t.Fatal("FC output count wrong")
	}
}

func TestSubsampledStridedPointwise(t *testing.T) {
	s := ConvShape{H: 16, W: 16, Cin: 4, Cout: 8, K: 1, Stride: 2, Pad: 0}
	pA, _ := NewPlan(s, 2048, AthenaOrder)
	pC, _ := NewPlan(s, 2048, CheetahOrder)
	if pA.EH != 8 || pA.EW != 8 {
		t.Fatalf("athena plan did not subsample: %dx%d", pA.EH, pA.EW)
	}
	if pC.EH != 16 {
		t.Fatal("cheetah plan unexpectedly subsampled")
	}
	checkShape(t, s, 2048, AthenaOrder)
	checkShape(t, s, 2048, CheetahOrder)
}

func TestPlanRejectsBadShapes(t *testing.T) {
	if _, err := NewPlan(ConvShape{}, 1024, AthenaOrder); err == nil {
		t.Fatal("zero shape accepted")
	}
	if _, err := NewPlan(ConvShape{H: 2, W: 2, Cin: 1, Cout: 1, K: 5, Stride: 1}, 1024, AthenaOrder); err == nil {
		t.Fatal("oversized kernel accepted")
	}
	if _, err := NewPlan(ConvShape{H: 64, W: 64, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1}, 1024, AthenaOrder); err == nil {
		t.Fatal("layer larger than ring accepted")
	}
	if _, err := NewPlan(ConvShape{H: 4, W: 4, Cin: 1, Cout: 1, K: 1, Stride: 1}, 1024, Strategy(9)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestTable2ValidRatios pins the Table 2 reproduction: the valid-data
// ratios of both strategies for the paper's six ResNet-20 layer shapes at
// N = 2^15. Paper values: Athena {50, 50, 25, 25, 6.25, 12.5}%, Cheetah
// {25, 3.13, 1.56, 2.27, 0.78, 0.96}%. Our model reproduces the Athena
// column exactly except row 5 (we get 12.5% — our packing fits all 64
// output channels after stride subsampling) and the Cheetah column
// exactly except rows 4 and 6 (we get the slightly denser 1.56%/0.78%);
// see EXPERIMENTS.md for the discussion.
func TestTable2ValidRatios(t *testing.T) {
	const n = 1 << 15
	shapes := []ConvShape{
		{H: 32, W: 32, Cin: 3, Cout: 16, K: 3, Stride: 1, Pad: 1},
		{H: 32, W: 32, Cin: 16, Cout: 16, K: 3, Stride: 1, Pad: 1},
		{H: 32, W: 32, Cin: 16, Cout: 32, K: 1, Stride: 2, Pad: 0},
		{H: 16, W: 16, Cin: 32, Cout: 32, K: 3, Stride: 1, Pad: 1},
		{H: 16, W: 16, Cin: 32, Cout: 64, K: 1, Stride: 2, Pad: 0},
		{H: 8, W: 8, Cin: 64, Cout: 64, K: 3, Stride: 1, Pad: 1},
	}
	wantAthena := []float64{50, 50, 25, 25, 12.5, 12.5}
	wantCheetah := []float64{25, 3.125, 1.5625, 1.5625, 0.78125, 0.78125}
	for i, s := range shapes {
		pa, err := NewPlan(s, n, AthenaOrder)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := NewPlan(s, n, CheetahOrder)
		if err != nil {
			t.Fatal(err)
		}
		ra := pa.ValidRatio() * 100
		rc := pc.ValidRatio() * 100
		if math.Abs(ra-wantAthena[i]) > 1e-9 {
			t.Errorf("row %d athena ratio %.4f%% want %.4f%%", i+1, ra, wantAthena[i])
		}
		if math.Abs(rc-wantCheetah[i]) > 1e-9 {
			t.Errorf("row %d cheetah ratio %.4f%% want %.4f%%", i+1, rc, wantCheetah[i])
		}
		if ra <= rc {
			t.Errorf("row %d: athena ratio %.2f%% not above cheetah %.2f%%", i+1, ra, rc)
		}
	}
}

func TestValidCoeffsAreDistinctAndInRange(t *testing.T) {
	s := ConvShape{H: 16, W: 16, Cin: 8, Cout: 16, K: 3, Stride: 1, Pad: 1}
	p, err := NewPlan(s, 1<<13, AthenaOrder)
	if err != nil {
		t.Fatal(err)
	}
	for ob := 0; ob < p.OutBatches; ob++ {
		seen := map[int]bool{}
		for _, v := range p.ValidCoeffs(ob) {
			if v.Coeff < 0 || v.Coeff >= p.N {
				t.Fatalf("coefficient %d out of range", v.Coeff)
			}
			if seen[v.Coeff] {
				t.Fatalf("duplicate coefficient %d", v.Coeff)
			}
			seen[v.Coeff] = true
		}
	}
}
