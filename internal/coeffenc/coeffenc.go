// Package coeffenc implements the coefficient encoding of Section 3.2.1:
// convolution and fully-connected layers become negacyclic polynomial
// products (PMult + HAdd only — no homomorphic rotations). Two packing
// strategies are provided:
//
//   - Athena order: output channels are packed first, so one result
//     ciphertext carries as many output channels as fit. This maximizes
//     the valid-data ratio of the result polynomial (Table 2) and
//     minimizes the number of ciphertexts flowing into sample extraction.
//   - Cheetah order: input channels are packed first (as in the Cheetah
//     system), minimizing ciphertext multiplications at the cost of
//     results scattered across many mostly-empty ciphertexts.
//
// For a 1×1 stride-s kernel the Athena strategy additionally subsamples
// the never-read input pixels ("adaptively selects H' and W'" in the
// paper), shrinking the footprint by s².
package coeffenc

import "fmt"

// Strategy selects the packing order.
type Strategy int

const (
	// AthenaOrder packs output channels first (Table 2's Athena column).
	AthenaOrder Strategy = iota
	// CheetahOrder packs input channels first (Table 2's Cheetah column).
	CheetahOrder
)

func (s Strategy) String() string {
	if s == AthenaOrder {
		return "athena"
	}
	return "cheetah"
}

// ConvShape describes one convolution layer. A fully-connected layer of
// F inputs and G outputs is the special case H=W=1, Cin=F, Cout=G, K=1.
type ConvShape struct {
	H, W      int // input feature map height and width
	Cin, Cout int // channel counts
	K         int // kernel size (K×K)
	Stride    int
	Pad       int
}

// FCShape returns the conv shape realizing an F→G fully-connected layer.
func FCShape(f, g int) ConvShape {
	return ConvShape{H: 1, W: 1, Cin: f, Cout: g, K: 1, Stride: 1, Pad: 0}
}

// OutH returns the output height.
func (s ConvShape) OutH() int { return (s.H+2*s.Pad-s.K)/s.Stride + 1 }

// OutW returns the output width.
func (s ConvShape) OutW() int { return (s.W+2*s.Pad-s.K)/s.Stride + 1 }

// MACsPerOutput returns the multiply-accumulate count feeding one output
// value (used for plaintext-modulus sizing, Fig. 4).
func (s ConvShape) MACsPerOutput() int { return s.Cin * s.K * s.K }

// Outputs returns the total output element count.
func (s ConvShape) Outputs() int { return s.Cout * s.OutH() * s.OutW() }

// Plan is a compiled mapping of one convolution layer onto ring
// polynomials of degree N.
type Plan struct {
	Shape    ConvShape
	N        int
	Strategy Strategy

	// Effective encoded geometry (after padding and, for the Athena 1×1
	// strided case, subsampling).
	EH, EW   int // encoded feature map dims (includes padding)
	EK       int // encoded kernel size
	EStride  int // encoded stride
	subEvery int // input subsample factor (1 = none)

	CB, OB int // input channels per ciphertext, output channels per result
	T      int // the Eq. 1 offset

	InBatches  int // ceil(Cin/CB): input ciphertexts
	OutBatches int // ceil(Cout/OB): result ciphertexts
}

// NewPlan compiles shape onto degree-N polynomials with the given
// strategy. It fails when even a single channel pair does not fit.
func NewPlan(shape ConvShape, n int, strategy Strategy) (*Plan, error) {
	if shape.H < 1 || shape.W < 1 || shape.Cin < 1 || shape.Cout < 1 || shape.K < 1 || shape.Stride < 1 || shape.Pad < 0 {
		return nil, fmt.Errorf("coeffenc: invalid shape %+v", shape)
	}
	if shape.K > shape.H+2*shape.Pad || shape.K > shape.W+2*shape.Pad {
		return nil, fmt.Errorf("coeffenc: kernel larger than padded input")
	}
	p := &Plan{Shape: shape, N: n, Strategy: strategy, subEvery: 1}
	p.EH = shape.H + 2*shape.Pad
	p.EW = shape.W + 2*shape.Pad
	p.EK = shape.K
	p.EStride = shape.Stride
	if strategy == AthenaOrder && shape.K == 1 && shape.Stride > 1 && shape.Pad == 0 {
		// Only every stride-th pixel is ever read: subsample.
		p.subEvery = shape.Stride
		p.EH = shape.OutH()
		p.EW = shape.OutW()
		p.EStride = 1
	}

	fits := func(cb, ob int) bool {
		t := p.tFor(cb, ob)
		maxIdx := t + (shape.OutH()-1)*p.EStride*p.EW + (shape.OutW()-1)*p.EStride
		return maxIdx < n
	}
	if !fits(1, 1) {
		return nil, fmt.Errorf("coeffenc: layer %+v does not fit in degree %d", shape, n)
	}

	switch strategy {
	case AthenaOrder:
		// Pack as many output channels as possible (all of Cout when it
		// fits, else the largest power of two), then grow input channels.
		p.OB = largestFit(shape.Cout, func(ob int) bool { return fits(1, ob) })
		p.CB = 1
		for cb := shape.Cin; cb >= 1; cb-- {
			if fits(cb, p.OB) {
				p.CB = cb
				break
			}
		}
	case CheetahOrder:
		p.CB = 1
		for cb := shape.Cin; cb >= 1; cb-- {
			if fits(cb, 1) {
				p.CB = cb
				break
			}
		}
		p.OB = largestFit(shape.Cout, func(ob int) bool { return fits(p.CB, ob) })
	default:
		return nil, fmt.Errorf("coeffenc: unknown strategy %d", strategy)
	}
	p.T = p.tFor(p.CB, p.OB)
	p.InBatches = (shape.Cin + p.CB - 1) / p.CB
	p.OutBatches = (shape.Cout + p.OB - 1) / p.OB
	return p, nil
}

// largestFit returns cout if it fits, else the largest power of two ≤
// cout that fits (at least 1).
func largestFit(cout int, fits func(int) bool) int {
	if fits(cout) {
		return cout
	}
	ob := 1
	for ob*2 < cout && fits(ob*2) {
		ob *= 2
	}
	return ob
}

// SubFactor returns the input subsampling factor applied by the encoding
// (1 when no subsampling; Stride for the Athena 1×1 strided case).
func (p *Plan) SubFactor() int { return p.subEvery }

// tFor computes the Eq. 1 offset T for a (cb, ob) packing.
func (p *Plan) tFor(cb, ob int) int {
	hw := p.EH * p.EW
	return hw*(ob*cb-1) + p.EW*(p.EK-1) + p.EK - 1
}

// EncodeInput places input channels [ib·CB, ib·CB+CB) into a coefficient
// vector per Eq. 1 (padded and, if applicable, subsampled). The input
// tensor is indexed m[c][h][w] over the unpadded geometry.
func (p *Plan) EncodeInput(m [][][]int64, ib int) []int64 {
	s := p.Shape
	out := make([]int64, p.N)
	hw := p.EH * p.EW
	for cl := 0; cl < p.CB; cl++ {
		c := ib*p.CB + cl
		if c >= s.Cin {
			break
		}
		for eh := 0; eh < p.EH; eh++ {
			for ew := 0; ew < p.EW; ew++ {
				// With subsampling Pad is zero, so this covers both cases.
				h := eh*p.subEvery - s.Pad
				w := ew*p.subEvery - s.Pad
				if h < 0 || h >= s.H || w < 0 || w >= s.W {
					continue // zero padding
				}
				out[cl*hw+eh*p.EW+ew] = m[c][h][w]
			}
		}
	}
	return out
}

// EncodeKernel places the kernels connecting input batch ib to output
// batch ob into a coefficient vector per Eq. 1. k is indexed
// k[cout][cin][i][j].
func (p *Plan) EncodeKernel(k [][][][]int64, ib, ob int) []int64 {
	s := p.Shape
	out := make([]int64, p.N)
	hw := p.EH * p.EW
	for ol := 0; ol < p.OB; ol++ {
		co := ob*p.OB + ol
		if co >= s.Cout {
			break
		}
		for cl := 0; cl < p.CB; cl++ {
			ci := ib*p.CB + cl
			if ci >= s.Cin {
				break
			}
			for i := 0; i < s.K; i++ {
				for j := 0; j < s.K; j++ {
					idx := p.T - ol*p.CB*hw - cl*hw - i*p.EW - j
					out[idx] = k[co][ci][i][j]
				}
			}
		}
	}
	return out
}

// OutputCoeff returns the coefficient index where output (olocal, y, x)
// of a result ciphertext lands (y, x in output coordinates).
func (p *Plan) OutputCoeff(olocal, y, x int) int {
	hw := p.EH * p.EW
	return p.T - olocal*p.CB*hw + y*p.EStride*p.EW + x*p.EStride
}

// ValidEntry identifies one valid output value inside a result
// polynomial.
type ValidEntry struct {
	Coeff int // coefficient index
	Cout  int // global output channel
	Y, X  int // output coordinates
}

// ValidCoeffs lists the valid outputs of result batch ob in
// (channel, y, x) order.
func (p *Plan) ValidCoeffs(ob int) []ValidEntry {
	s := p.Shape
	var out []ValidEntry
	for ol := 0; ol < p.OB; ol++ {
		co := ob*p.OB + ol
		if co >= s.Cout {
			break
		}
		for y := 0; y < s.OutH(); y++ {
			for x := 0; x < s.OutW(); x++ {
				out = append(out, ValidEntry{Coeff: p.OutputCoeff(ol, y, x), Cout: co, Y: y, X: x})
			}
		}
	}
	return out
}

// ValidRatio returns the fraction of result-polynomial coefficients that
// carry outputs (Table 2's metric), aggregated over all result
// ciphertexts.
func (p *Plan) ValidRatio() float64 {
	return float64(p.Shape.Outputs()) / float64(p.OutBatches*p.N)
}

// Counts returns the homomorphic operation counts of the layer:
// PMult products and HAdd accumulations.
func (p *Plan) Counts() (pmult, hadd int) {
	pmult = p.InBatches * p.OutBatches
	hadd = (p.InBatches - 1) * p.OutBatches
	if hadd < 0 {
		hadd = 0
	}
	return pmult, hadd
}

// Execute runs the layer in the clear (negacyclic polynomial arithmetic
// over the integers) — the reference the homomorphic path is tested
// against, and the fast path for plaintext shadow execution. It returns
// one result coefficient vector per output batch.
func (p *Plan) Execute(m [][][]int64, k [][][][]int64) [][]int64 {
	results := make([][]int64, p.OutBatches)
	for ob := 0; ob < p.OutBatches; ob++ {
		acc := make([]int64, p.N)
		for ib := 0; ib < p.InBatches; ib++ {
			mv := p.EncodeInput(m, ib)
			kv := p.EncodeKernel(k, ib, ob)
			negacyclicMulAdd(mv, kv, acc)
		}
		results[ob] = acc
	}
	return results
}

// negacyclicMulAdd computes acc += a·b mod (X^N+1) over the integers,
// skipping zero coefficients (encodings are sparse).
func negacyclicMulAdd(a, b, acc []int64) {
	n := len(a)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			k := i + j
			if k < n {
				acc[k] += ai * bj
			} else {
				acc[k-n] -= ai * bj
			}
		}
	}
}

// Decode extracts the valid outputs of result batch ob from a result
// coefficient vector into out[cout][y][x] (which must be pre-allocated
// with the full output geometry).
func (p *Plan) Decode(res []int64, ob int, out [][][]int64) {
	for _, v := range p.ValidCoeffs(ob) {
		out[v.Cout][v.Y][v.X] = res[v.Coeff]
	}
}
