package coeffenc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: for random layer geometries that fit the ring, encode →
// multiply → decode equals the direct convolution, for both packing
// strategies.
func TestQuickConvEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xc0))
		s := ConvShape{
			H:      3 + rng.IntN(6),
			W:      3 + rng.IntN(6),
			Cin:    1 + rng.IntN(4),
			Cout:   1 + rng.IntN(4),
			K:      1 + 2*rng.IntN(2), // 1 or 3
			Stride: 1 + rng.IntN(2),
			Pad:    rng.IntN(2),
		}
		if s.K > s.H+2*s.Pad || s.K > s.W+2*s.Pad {
			return true // degenerate; skip
		}
		for _, strat := range []Strategy{AthenaOrder, CheetahOrder} {
			p, err := NewPlan(s, 4096, strat)
			if err != nil {
				return false
			}
			m := randTensor3(s.Cin, s.H, s.W, seed+1)
			k := randTensor4(s.Cout, s.Cin, s.K, seed+2)
			want := refConv(s, m, k)
			res := p.Execute(m, k)
			got := make([][][]int64, s.Cout)
			for co := range got {
				got[co] = make([][]int64, s.OutH())
				for y := range got[co] {
					got[co][y] = make([]int64, s.OutW())
				}
			}
			for ob := 0; ob < p.OutBatches; ob++ {
				p.Decode(res[ob], ob, got)
			}
			for co := range want {
				for y := range want[co] {
					for x := range want[co][y] {
						if got[co][y][x] != want[co][y][x] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the Athena encoding's valid ratio is never below Cheetah's
// (the Table 2 claim, generalized over geometries).
func TestQuickAthenaRatioDominates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xd0))
		s := ConvShape{
			H:      4 + rng.IntN(29),
			W:      4 + rng.IntN(29),
			Cin:    1 << rng.IntN(5),
			Cout:   1 << rng.IntN(6),
			K:      1 + 2*rng.IntN(2),
			Stride: 1 + rng.IntN(2),
			Pad:    rng.IntN(2),
		}
		if s.K > s.H+2*s.Pad || s.K > s.W+2*s.Pad {
			return true
		}
		pa, errA := NewPlan(s, 1<<15, AthenaOrder)
		pc, errC := NewPlan(s, 1<<15, CheetahOrder)
		if errA != nil || errC != nil {
			return true // geometry does not fit: nothing to compare
		}
		return pa.ValidRatio() >= pc.ValidRatio()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every valid coefficient index is unique within a result
// ciphertext and in range, for random geometries.
func TestQuickValidCoeffsWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xe0))
		s := ConvShape{
			H:      3 + rng.IntN(10),
			W:      3 + rng.IntN(10),
			Cin:    1 + rng.IntN(8),
			Cout:   1 + rng.IntN(8),
			K:      1 + 2*rng.IntN(2),
			Stride: 1 + rng.IntN(2),
			Pad:    rng.IntN(2),
		}
		if s.K > s.H+2*s.Pad || s.K > s.W+2*s.Pad {
			return true
		}
		p, err := NewPlan(s, 8192, AthenaOrder)
		if err != nil {
			return true
		}
		total := 0
		for ob := 0; ob < p.OutBatches; ob++ {
			seen := map[int]bool{}
			for _, v := range p.ValidCoeffs(ob) {
				if v.Coeff < 0 || v.Coeff >= p.N || seen[v.Coeff] {
					return false
				}
				seen[v.Coeff] = true
				total++
			}
		}
		return total == s.Outputs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
