package report

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"testing"

	"athena/internal/core"
	"athena/internal/qnn"
)

// ScalingTable runs only the EncryptedInference/p={1,2,4} multicore
// rows and renders a markdown speedup table (relative to p=1). This is
// the CI multicore-scaling job's payload: the dev container is 1-CPU,
// so the 4-vCPU runner is where operator-level fan-out (ROADMAP item 4)
// is actually demonstrated. Rows beyond the host's core count saturate
// at hardware parallelism; the table prints nproc so readers can judge.
func ScalingTable(procs []int) (string, error) {
	if len(procs) == 0 {
		procs = []int{1, 2, 4}
	}
	cp := core.TestParams()
	eng, err := core.NewEngine(cp)
	if err != nil {
		return "", err
	}
	net := kernelTinyNet()
	rng := rand.New(rand.NewPCG(42, 42))
	x := qnn.NewIntTensor(1, 6, 6)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	// Warm plan caches so the first measured row is not charged for them.
	if _, err := eng.Infer(net, x); err != nil {
		return "", err
	}

	nsOp := make([]int64, len(procs))
	for i, p := range procs {
		p := p
		r := testing.Benchmark(func(b *testing.B) {
			old := runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(old)
			for j := 0; j < b.N; j++ {
				if _, err := eng.Infer(net, x); err != nil {
					b.Fatal(err)
				}
			}
		})
		nsOp[i] = r.NsPerOp()
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "EncryptedInference multicore scaling (host cores: %d)\n\n", runtime.NumCPU())
	sb.WriteString("| p | ns/op | speedup vs p=1 |\n|---|------:|---------------:|\n")
	for i, p := range procs {
		speedup := float64(nsOp[0]) / float64(nsOp[i])
		fmt.Fprintf(&sb, "| %d | %d | %.2fx |\n", p, nsOp[i], speedup)
	}
	return sb.String(), nil
}
