package report

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"athena/internal/cluster"
	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
	serveclient "athena/internal/serve/client"
)

// clusterThroughputRows measures horizontal scaling through the ASV1
// router: an in-process cluster of 1, 2, and 3 athena-serve nodes
// behind one router, driven by 16 clients spread over 4 distinct
// sessions (4 engines with distinct key seeds, so consistent hashing
// places them on different nodes). ns_op is wall time per request —
// the regression gate applies — and req_per_sec is the realized
// cluster throughput at that node count. The sessions and traffic are
// identical across rows, so the req/s progression is the scaling
// curve.
func clusterThroughputRows(out map[string]KernelResult) error {
	const sessions = 4
	const clientsPerSession = 4
	const rounds = 2
	model := serve.DemoNet()

	// One engine per session: distinct key seeds give distinct content
	// addresses, which is what lets placement spread them.
	engs := make([]*core.Engine, sessions)
	ins := make([]*core.EncryptedInput, sessions)
	for i := range engs {
		p := core.TestParams()
		p.Seed = uint64(1000 + i)
		eng, err := core.NewEngine(p)
		if err != nil {
			return err
		}
		engs[i] = eng
		if ins[i], err = eng.EncryptInput(model, serve.DemoInput(uint64(i+1))); err != nil {
			return err
		}
	}

	for _, nodeCount := range []int{1, 2, 3} {
		row, err := clusterThroughputRow(model, engs, ins, nodeCount, clientsPerSession, rounds)
		if err != nil {
			return fmt.Errorf("report: cluster throughput nodes=%d: %w", nodeCount, err)
		}
		out[fmt.Sprintf("ClusterThroughput/nodes=%d", nodeCount)] = row
	}
	return nil
}

// ClusterScalingTable runs only the ClusterThroughput/nodes={1,2,3}
// rows and renders a markdown req/s table (the CI cluster-integration
// job's step-summary payload). Scaling flattens when the host has
// fewer cores than nodes; the header prints the core count so readers
// can judge.
func ClusterScalingTable() (string, error) {
	out := map[string]KernelResult{}
	if err := clusterThroughputRows(out); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster throughput through the ASV1 router (host cores: %d)\n\n", runtime.NumCPU())
	sb.WriteString("| nodes | ns/req | req/s |\n|------:|-------:|------:|\n")
	for _, n := range []int{1, 2, 3} {
		r := out[fmt.Sprintf("ClusterThroughput/nodes=%d", n)]
		fmt.Fprintf(&sb, "| %d | %d | %.2f |\n", n, r.NsOp, r.ReqPerSec)
	}
	return sb.String(), nil
}

func clusterThroughputRow(model *qnn.QNetwork, engs []*core.Engine, ins []*core.EncryptedInput, nodeCount, clientsPerSession, rounds int) (KernelResult, error) {
	var zero KernelResult
	members := cluster.NewMembership(0)
	type nodeHandle struct {
		name string
		srv  *serve.Server
	}
	nodes := make([]nodeHandle, 0, nodeCount)
	defer func() {
		for _, n := range nodes {
			n.srv.Shutdown()
		}
	}()
	for i := 0; i < nodeCount; i++ {
		name := fmt.Sprintf("n%d", i)
		dataDir, err := os.MkdirTemp("", "athena-bench-cluster-*")
		if err != nil {
			return zero, err
		}
		defer os.RemoveAll(dataDir)
		srv, err := serve.NewServer(serve.Config{
			Params:   core.TestParams(),
			Models:   map[string]*qnn.QNetwork{model.Name: model},
			MaxBatch: 16,
			MaxWait:  25 * time.Millisecond,
			MaxQueue: 256,
			DataDir:  dataDir,
		})
		if err != nil {
			return zero, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown()
			return zero, err
		}
		//lint:allow goleak the accept loop exits when the deferred node Shutdown closes the listener
		go srv.Serve(ln)
		nodes = append(nodes, nodeHandle{name: name, srv: srv})
		if err := members.Join(name, ln.Addr().String(), ""); err != nil {
			return zero, err
		}
	}
	// Ownership predicates applied directly (the binaries push the same
	// document over the admin plane).
	doc := members.Doc()
	for _, n := range nodes {
		n.srv.SetSessionOwnership(doc.OwnedFunc(n.name))
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{Members: members})
	if err != nil {
		return zero, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return zero, err
	}
	//lint:allow goleak the accept loop exits when the deferred Shutdown closes the listener
	go router.Serve(rln)
	defer router.Shutdown()

	total := len(engs) * clientsPerSession
	cs := make([]*serveclient.Client, 0, total)
	defer func() {
		for _, c := range cs {
			c.Close()
		}
	}()
	which := make([]int, 0, total)
	for s, eng := range engs {
		var sessID string
		for k := 0; k < clientsPerSession; k++ {
			c, err := serveclient.Dial(rln.Addr().String(), eng, serveclient.Options{})
			if err != nil {
				return zero, err
			}
			cs = append(cs, c)
			which = append(which, s)
			if k == 0 {
				if sessID, err = c.OpenSession(); err != nil {
					return zero, err
				}
			} else if err := c.Attach(sessID); err != nil {
				return zero, err
			}
		}
		// Warm-up primes the backend connection and per-session caches.
		if _, err := cs[len(cs)-1].InferEncrypted(model, ins[s], 0); err != nil {
			return zero, err
		}
	}

	start := time.Now()
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := cs[i].InferEncrypted(model, ins[which[i]], 0); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return zero, err
		}
	}
	reqs := total * rounds
	return KernelResult{
		NsOp:      elapsed.Nanoseconds() / int64(reqs),
		ReqPerSec: float64(reqs) / elapsed.Seconds(),
	}, nil
}
