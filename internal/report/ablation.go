package report

import (
	"fmt"
	"strings"

	"athena/internal/arch"
	"athena/internal/coeffenc"
	"athena/internal/compiler"
	"athena/internal/core"
	"athena/internal/security"
)

// Ablations quantifies the design choices DESIGN.md calls out, on
// ResNet-20 w7a7 at full-scale parameters:
//
//  1. the Fig. 7 two-region FBS pipeline vs serialized regions,
//  2. per-layer LUT sizing vs a uniform full-t table,
//  3. Athena's output-major encoding vs Cheetah's input-major order
//     (result-ciphertext and extraction pressure),
//  4. stride subsampling for 1×1 kernels on/off.
func Ablations() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablations (ResNet-20, w7a7, full-scale parameters)")

	qn, err := compiler.SpecModel("ResNet-20", 7, 7)
	if err != nil {
		return "ablations: " + err.Error()
	}
	tr, err := compiler.Compile(qn, core.FullParams())
	if err != nil {
		return "ablations: " + err.Error()
	}
	base := arch.Simulate(tr, arch.AthenaConfig())

	// 1. Region pipeline.
	serial := arch.AthenaConfig()
	serial.SerializeFBSRegions = true
	rs := arch.Simulate(tr, serial)
	fmt.Fprintf(&b, "  region pipeline (Fig. 7):   %7.1f ms pipelined vs %7.1f ms serialized (%.2fx)\n",
		base.TimeMS, rs.TimeMS, rs.TimeMS/base.TimeMS)

	// 2. Per-layer LUT sizing.
	trU, err := compiler.CompileWithOptions(qn, core.FullParams(), compiler.Options{UniformLUT: true})
	if err != nil {
		return "ablations: " + err.Error()
	}
	ru := arch.Simulate(trU, arch.AthenaConfig())
	fmt.Fprintf(&b, "  per-layer LUT sizing:       %7.1f ms sized     vs %7.1f ms uniform-t  (%.2fx)\n",
		base.TimeMS, ru.TimeMS, ru.TimeMS/base.TimeMS)

	// 3. Encoding order: result-ciphertext count feeding conversion.
	var athenaCTs, cheetahCTs int
	for _, c := range qn.Convs() {
		pa, err := coeffenc.NewPlan(c.Shape, 1<<15, coeffenc.AthenaOrder)
		if err != nil {
			return "ablations: " + err.Error()
		}
		pc, err := coeffenc.NewPlan(c.Shape, 1<<15, coeffenc.CheetahOrder)
		if err != nil {
			return "ablations: " + err.Error()
		}
		athenaCTs += pa.OutBatches
		cheetahCTs += pc.OutBatches
	}
	fmt.Fprintf(&b, "  encoding order:             %7d result cts (athena) vs %d (cheetah input-major): %.1fx fewer conversions\n",
		athenaCTs, cheetahCTs, float64(cheetahCTs)/float64(athenaCTs))

	// 4. Stride subsampling on the 1×1 stride-2 projection layers.
	shape := coeffenc.ConvShape{H: 32, W: 32, Cin: 16, Cout: 32, K: 1, Stride: 2, Pad: 0}
	pSub, _ := coeffenc.NewPlan(shape, 1<<15, coeffenc.AthenaOrder)  // subsamples
	pRaw, _ := coeffenc.NewPlan(shape, 1<<15, coeffenc.CheetahOrder) // no subsampling
	fmt.Fprintf(&b, "  1x1 stride-2 subsampling:   %7.2f%% valid ratio with vs %.2f%% without\n",
		pSub.ValidRatio()*100, pRaw.ValidRatio()*100)
	return b.String()
}

// Security renders the lattice-security estimates behind the paper's
// ">128 bits" claim.
func Security() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Security estimates (HE-standard ternary-secret tables)")
	reports, all := security.Check(security.AthenaInstances())
	for _, r := range reports {
		mark := "OK"
		if !r.Meets128 {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  %-24s N=%-6d logQ=%-4.0f -> %6.0f bits [%s]\n",
			r.Name, r.N, r.LogQ, r.EstimatedBits, mark)
	}
	fmt.Fprintf(&b, "  all instances >=128 bits: %v (paper: \"guarantee > 128 bits security\")\n", all)
	fmt.Fprintln(&b, "  note: the reduced test/demo parameter sets intentionally claim NO security.")
	return b.String()
}
