package report

import (
	"strings"
	"testing"
)

func mustContain(t *testing.T, s string, subs ...string) {
	t.Helper()
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			t.Fatalf("output missing %q:\n%s", sub, s)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	mustContain(t, s, "Athena (ours)", "32768", "720", "CKKS")
	if strings.Contains(s, "error") {
		t.Fatal("render error")
	}
}

func TestFig1Renders(t *testing.T) {
	s := Fig1(11)
	mustContain(t, s, "relu", "sigmoid", "taylor", "chebyshev", "Δ=25")
}

func TestTable2Renders(t *testing.T) {
	s := Table2()
	mustContain(t, s, "cheetah", "athena", "50.00%", "3.12%")
}

func TestTable3Renders(t *testing.T) {
	mustContain(t, Table3(), "O(√t)", "Athena", "Bootstrap")
}

func TestTable4Renders(t *testing.T) {
	s := Table4()
	mustContain(t, s, "558", "706", "FBS", "budget ok: true")
}

func TestTable6Renders(t *testing.T) {
	s := Table6()
	mustContain(t, s, "CraterLake", "SHARP", "Athena-w7a7", "Athena-w6a7", "ResNet-56")
}

func TestTable7And11Render(t *testing.T) {
	mustContain(t, Table7(), "energy-delay product")
	mustContain(t, Fig11(), "energy-delay-area")
}

func TestTable8And9Render(t *testing.T) {
	mustContain(t, Table8(), "Athena", "180")
	mustContain(t, Table9(), "116.4", "148.1", "FRU")
}

func TestFig8Renders(t *testing.T) {
	s := Fig8()
	mustContain(t, s, "CraterLake+AthenaFW", "SHARP+AthenaFW", "slower")
}

func TestFig9And10Render(t *testing.T) {
	mustContain(t, Fig9(), "activation", "pooling", "softmax")
	mustContain(t, Fig10(), "HBM", "FRU", "total J")
}

func TestFig12PerfRenders(t *testing.T) {
	s := Fig12Perf()
	mustContain(t, s, "w4a4", "w8a8", "ResNet-56", "w8a8/w7a7")
}

func TestFig13Renders(t *testing.T) {
	s := Fig13()
	mustContain(t, s, "NTT", "FRU", "2048", "256")
}

func TestAblationsRender(t *testing.T) {
	s := Ablations()
	mustContain(t, s, "region pipeline", "LUT sizing", "encoding order", "subsampling")
	if strings.Contains(s, "error") {
		t.Fatalf("ablation error:\n%s", s)
	}
}

func TestSecurityRenders(t *testing.T) {
	s := Security()
	mustContain(t, s, "RLWE", "LWE", ">=128 bits: true")
	if strings.Contains(s, "FAIL") {
		t.Fatalf("security check failed:\n%s", s)
	}
}

func TestSimulateModelErrors(t *testing.T) {
	if _, err := SimulateModel("NoSuchNet", 7, 7); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAccuracyStudiesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("model training; run without -short")
	}
	cfg := DefaultAccuracyConfig()
	cfg.TestSamples = 40
	cfg.TrainDigits = 400
	cfg.Epochs = 2
	mustContain(t, Fig4(cfg), "maxAcc", "error ratio")
	mustContain(t, Fig12Accuracy(cfg), "w4a4", "w7a7")
	cfg.SkipResNet56 = true
	cfg.TrainCIFAR = 60
	s := Table5(cfg)
	mustContain(t, s, "MNIST", "LeNet", "ResNet-20", "plain-G")
}

func TestThroughputRenders(t *testing.T) {
	s := Throughput()
	mustContain(t, s, "MNIST", "images/s", "16")
	if strings.Contains(s, "throughput: ") {
		t.Fatalf("render error:\n%s", s)
	}
}
