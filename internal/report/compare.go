package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReadKernelBenchmarks loads a BENCH_kernels.json baseline written by
// WriteKernelBenchmarks.
func ReadKernelBenchmarks(path string) (map[string]KernelResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]KernelResult
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("report: %s: empty baseline", path)
	}
	return out, nil
}

// CompareKernelBenchmarks renders a regression report of cur against
// base. Rows whose ns/op grew by more than tol (fractional: 0.25 means
// +25%) are flagged and returned by name. Rows present in only one of
// the two sets are reported as new/missing but never flagged — adding a
// kernel must not fail the gate, and a renamed kernel shows up as one
// "missing" plus one "new" row for a human to resolve by re-baselining.
func CompareKernelBenchmarks(base, cur map[string]KernelResult, tol float64) (string, []string) {
	names := make([]string, 0, len(base)+len(cur))
	seen := map[string]bool{}
	for n := range base {
		seen[n] = true
		names = append(names, n)
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var flagged []string
	s := fmt.Sprintf("Kernel regression check (tolerance +%.0f%%)\n%-24s %14s %14s %12s\n",
		tol*100, "kernel", "base ns/op", "ns/op", "delta")
	for _, n := range names {
		b, inBase := base[n]
		c, inCur := cur[n]
		switch {
		case !inBase:
			s += fmt.Sprintf("%-24s %14s %14d %12s\n", n, "-", c.NsOp, "new")
		case !inCur:
			s += fmt.Sprintf("%-24s %14d %14s %12s\n", n, b.NsOp, "-", "missing")
		default:
			ratio := float64(c.NsOp)/float64(b.NsOp) - 1
			status := fmt.Sprintf("%+.1f%%", ratio*100)
			if ratio > tol {
				status += " !!"
				flagged = append(flagged, n)
			}
			s += fmt.Sprintf("%-24s %14d %14d %12s\n", n, b.NsOp, c.NsOp, status)
		}
	}
	return s, flagged
}
