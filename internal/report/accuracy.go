package report

import (
	"fmt"
	"strings"
	"sync"

	"athena/internal/ckksref"
	"athena/internal/noise"
	"athena/internal/qnn"
)

// AccuracyConfig sizes the Table 5 / Fig. 12 accuracy studies. The
// defaults keep single-core runtime reasonable; EXPERIMENTS.md records
// the sizes used for the committed numbers.
type AccuracyConfig struct {
	TrainDigits  int // training samples for MNIST/LeNet
	TrainCIFAR   int // readout-training samples for the ResNets
	TestSamples  int // evaluation samples per model
	Epochs       int
	EmsSigma     float64 // e_ms injected std (accumulator units)
	Seed         uint64
	SkipResNet56 bool // the slowest model; skipped in quick runs
}

// DefaultAccuracyConfig returns a configuration sized for the benchmark
// harness on one core.
func DefaultAccuracyConfig() AccuracyConfig {
	return AccuracyConfig{
		TrainDigits: 900,
		TrainCIFAR:  200,
		TestSamples: 200,
		Epochs:      5,
		EmsSigma:    10,
		Seed:        17,
	}
}

// trainedModel caches one trained float network and its datasets.
type trainedModel struct {
	net   *qnn.Network
	train *qnn.Dataset
	test  *qnn.Dataset
}

var (
	trainedMu    sync.Mutex
	trainedCache = map[string]*trainedModel{}
)

// TrainedModel returns (training + caching) the named benchmark model:
// full SGD for MNIST/LeNet on synthetic digits, frozen-feature readout
// training for the ResNets on synthetic CIFAR (see DESIGN.md for the
// substitution rationale).
func TrainedModel(name string, cfg AccuracyConfig) (*qnn.Network, *qnn.Dataset, *qnn.Dataset, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", name, cfg.TrainDigits, cfg.TrainCIFAR, cfg.TestSamples, cfg.Epochs)
	trainedMu.Lock()
	defer trainedMu.Unlock()
	if tm, ok := trainedCache[key]; ok {
		return tm.net, tm.train, tm.test, nil
	}
	net, err := qnn.ModelByName(name, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	tc := qnn.DefaultTrainConfig()
	tc.Epochs = cfg.Epochs
	tc.Seed = cfg.Seed
	var train, test *qnn.Dataset
	switch name {
	case "MNIST", "LeNet":
		train = qnn.SynthDigits(cfg.TrainDigits, cfg.Seed+1)
		test = qnn.SynthDigits(cfg.TestSamples, cfg.Seed+2)
		qnn.Train(net, train, tc)
	default:
		train = qnn.SynthCIFAR(cfg.TrainCIFAR, cfg.Seed+1)
		test = qnn.SynthCIFAR(cfg.TestSamples, cfg.Seed+2)
		tc.Epochs = 10
		tc.LR = 0.1
		//lint:holdok trainedMu serializes the one-time readout training; waiters need the shared model and block on it by design
		qnn.TrainReadout(net, train, tc)
	}
	trainedCache[key] = &trainedModel{net: net, train: train, test: test}
	return net, train, test, nil
}

// Table5Row is one accuracy row.
type Table5Row struct {
	Model            string
	PlainG           float64 // float accuracy
	PlainQ7, Cipher7 float64 // w7a7 plain-quantized / e_ms-injected
	PlainQ6, Cipher6 float64 // w6a7
}

// Table5Rows computes the accuracy study.
func Table5Rows(cfg AccuracyConfig) ([]Table5Row, error) {
	var rows []Table5Row
	for _, m := range qnn.BenchmarkModels {
		if cfg.SkipResNet56 && m == "ResNet-56" {
			continue
		}
		net, train, test, err := TrainedModel(m, cfg)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Model: m, PlainG: qnn.Accuracy(net, test)}
		for _, wb := range []int{7, 6} {
			qc := qnn.DefaultQuantConfig()
			qc.WBits = wb
			qc.AccCap = 29000 // keep every layer inside t/2 at t=65537
			qnet, err := qnn.Quantize(net, train, qc)
			if err != nil {
				return nil, err
			}
			// QAT-lite: recalibrate the classifier head on the quantized
			// trunk's integer features (the paper quantizes QAT-trained
			// models; see DESIGN.md).
			if err := qnet.RetrainHead(train, 30, 0.02, cfg.Seed+3); err != nil {
				return nil, err
			}
			plainQ := qnet.AccuracyInt(test)
			cipher := qnet.AccuracyNoisy(test, cfg.EmsSigma, cfg.Seed+9)
			if wb == 7 {
				row.PlainQ7, row.Cipher7 = plainQ, cipher
			} else {
				row.PlainQ6, row.Cipher6 = plainQ, cipher
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5 renders the accuracy comparison.
func Table5(cfg AccuracyConfig) string {
	rows, err := Table5Rows(cfg)
	if err != nil {
		return "table 5: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: accuracy under plaintext and ciphertext inference (synthetic datasets, %d test samples)\n", cfg.TestSamples)
	fmt.Fprintf(&b, "%-11s %8s | %8s %8s %7s | %8s %8s %7s\n",
		"model", "plain-G", "plainQ7", "cipher7", "delta", "plainQ6", "cipher6", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %7.2f%% | %7.2f%% %7.2f%% %+6.2f%% | %7.2f%% %7.2f%% %+6.2f%%\n",
			r.Model, r.PlainG*100,
			r.PlainQ7*100, r.Cipher7*100, (r.Cipher7-r.PlainQ7)*100,
			r.PlainQ6*100, r.Cipher6*100, (r.Cipher6-r.PlainQ6)*100)
	}
	fmt.Fprintf(&b, "(paper: cipher-vs-plainQ deltas within +0.01/-0.24%% on real MNIST/CIFAR-10)\n")
	return b.String()
}

// Fig4 renders the parameter-t rationale: per-layer max accumulator bits
// against the t bound, and the e_ms error ratio.
func Fig4(cfg AccuracyConfig) string {
	net, train, _, err := TrainedModel("MNIST", cfg)
	if err != nil {
		return "fig 4: " + err.Error()
	}
	qc := qnn.DefaultQuantConfig()
	qc.AccCap = 29000
	qnet, err := qnn.Quantize(net, train, qc)
	if err != nil {
		return "fig 4: " + err.Error()
	}
	sigma := noise.EmsSigma(1<<15, 3.2, 720, 16)
	stats := noise.Fig4Stats(qnet, train, 16, sigma, cfg.Seed)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: max MAC vs t and e_ms error ratio (MNIST w7a7, e_ms sigma=%.1f)\n", sigma)
	fmt.Fprintf(&b, "%-22s %10s %10s %12s\n", "layer", "maxAcc", "bits", "error ratio")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-22s %10d %10.1f %11.2f%%\n", s.Name, s.MaxAcc, s.MaxAccBits, s.ErrorRatio*100)
	}
	fmt.Fprintf(&b, "t/2 bound: 32768 (15.0 bits); paper: error ratios mostly <6%%, max <11%%\n")
	return b.String()
}

// Fig1Model renders the CNN curve of Fig. 1: output-probability bit
// accuracy of the trained MNIST benchmark with ReLU replaced by Δ-bit
// series expansions.
func Fig1Model(cfg AccuracyConfig) string {
	net, train, _, err := TrainedModel("MNIST", cfg)
	if err != nil {
		return "fig 1 model: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 (model curve): CNN output-probability accuracy (bits) with approximated ReLU\n")
	fmt.Fprintf(&b, "%6s | %6s %6s %6s %6s\n", "order", "Δ=25", "Δ=30", "Δ=35", "Δ=40")
	for _, order := range []int{3, 7, 15, 27} {
		fmt.Fprintf(&b, "%6d |", order)
		for _, d := range []int{25, 30, 35, 40} {
			fmt.Fprintf(&b, " %6.2f", ckksref.ModelBitAccuracy(net, train, 16, order, d))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "(paper: degraded and unstable accuracy even at Δ=30/35, worse than exact ReLU)\n")
	return b.String()
}

// Fig12Accuracy renders the accuracy half of the quantization sweep on
// the MNIST benchmark (trained quickly; the paper plateau at w6a7+ is
// the reproduced shape).
func Fig12Accuracy(cfg AccuracyConfig) string {
	net, train, test, err := TrainedModel("MNIST", cfg)
	if err != nil {
		return "fig 12: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 (accuracy): quantization precision sweep (MNIST, %d test samples)\n", cfg.TestSamples)
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "mode", "plain-Q", "cipher")
	type pt struct{ w, a int }
	for _, m := range []pt{{4, 4}, {5, 5}, {6, 6}, {6, 7}, {7, 7}, {8, 8}} {
		qc := qnn.DefaultQuantConfig()
		qc.WBits, qc.ABits = m.w, m.a
		qc.AccCap = 29000
		qnet, err := qnn.Quantize(net, train, qc)
		if err != nil {
			return "fig 12: " + err.Error()
		}
		if err := qnet.RetrainHead(train, 20, 0.02, cfg.Seed+3); err != nil {
			return "fig 12: " + err.Error()
		}
		fmt.Fprintf(&b, "w%da%d %11.2f%% %9.2f%%\n",
			m.w, m.a, qnet.AccuracyInt(test)*100, qnet.AccuracyNoisy(test, cfg.EmsSigma, cfg.Seed+3)*100)
	}
	return b.String()
}
