package report

import (
	"fmt"
	"strings"
	"sync"

	"athena/internal/arch"
	"athena/internal/compiler"
	"athena/internal/core"
	"athena/internal/qnn"
)

// modelResults caches simulator runs across the tables that share them.
type modelResults struct {
	w7, w6 map[string]*arch.Result
}

var (
	simOnce sync.Once
	simMR   *modelResults
	simErr  error
)

// simulateAll runs (once per process) the 4 benchmarks × 2 quantization
// modes on the Athena configuration; every perf table shares the cache.
func simulateAll() (*modelResults, error) {
	simOnce.Do(func() {
		mr := &modelResults{w7: map[string]*arch.Result{}, w6: map[string]*arch.Result{}}
		for _, m := range qnn.BenchmarkModels {
			r7, err := SimulateModel(m, 7, 7)
			if err != nil {
				simErr = err
				return
			}
			r6, err := SimulateModel(m, 6, 7)
			if err != nil {
				simErr = err
				return
			}
			mr.w7[m] = r7
			mr.w6[m] = r6
		}
		simMR = mr
	})
	return simMR, simErr
}

// Table6 renders the full-system performance comparison.
func Table6() string {
	mr, err := simulateAll()
	if err != nil {
		return "table 6: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: full-system performance (ms)\n")
	fmt.Fprintf(&b, "%-14s", "")
	for _, m := range qnn.BenchmarkModels {
		fmt.Fprintf(&b, " %10s", m)
	}
	fmt.Fprintln(&b)
	for _, bl := range arch.Baselines() {
		fmt.Fprintf(&b, "%-14s", bl.Name)
		for _, m := range qnn.BenchmarkModels {
			t, _ := bl.BaselineRuntime(m)
			fmt.Fprintf(&b, " %10.1f", t)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-14s", "Athena-w7a7")
	for _, m := range qnn.BenchmarkModels {
		fmt.Fprintf(&b, " %10.1f", mr.w7[m].TimeMS)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-14s", "Athena-w6a7")
	for _, m := range qnn.BenchmarkModels {
		fmt.Fprintf(&b, " %10.1f", mr.w6[m].TimeMS)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// Table7 renders the EDP comparison, Fig11 the EDAP comparison.
func Table7() string { return edpTable(false) }

// Fig11 renders the EDAP comparison.
func Fig11() string { return edpTable(true) }

func edpTable(area bool) string {
	mr, err := simulateAll()
	if err != nil {
		return "edp: " + err.Error()
	}
	title := "Table 7: energy-delay product (J*s)"
	if area {
		title = "Fig. 11: energy-delay-area product (J*s*mm2)"
	}
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-14s", "")
	for _, m := range qnn.BenchmarkModels {
		fmt.Fprintf(&b, " %12s", m)
	}
	fmt.Fprintln(&b)
	for _, bl := range arch.Baselines() {
		fmt.Fprintf(&b, "%-14s", bl.Name)
		for _, m := range qnn.BenchmarkModels {
			var v float64
			if area {
				v, _ = bl.EDAP(m)
			} else {
				v, _ = bl.EDP(m)
			}
			fmt.Fprintf(&b, " %12.4g", v)
		}
		fmt.Fprintln(&b)
	}
	for _, mode := range []string{"Athena-w7a7", "Athena-w6a7"} {
		fmt.Fprintf(&b, "%-14s", mode)
		for _, m := range qnn.BenchmarkModels {
			r := mr.w7[m]
			if mode == "Athena-w6a7" {
				r = mr.w6[m]
			}
			v := r.EDP
			if area {
				v = r.EDAPmm2
			}
			fmt.Fprintf(&b, " %12.4g", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig8 renders the Athena-framework-on-foreign-hardware study.
func Fig8() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: Athena framework on existing FHE accelerators (ResNet-20/-56, w7a7)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "hardware", "RN20 (ms)", "RN56 (ms)", "MM/MA share")
	run := func(cfg arch.Config) (r20, r56 *arch.Result, err error) {
		for _, m := range []string{"ResNet-20", "ResNet-56"} {
			qn, err := compiler.SpecModel(m, 7, 7)
			if err != nil {
				return nil, nil, err
			}
			tr, err := compiler.Compile(qn, core.FullParams())
			if err != nil {
				return nil, nil, err
			}
			res := arch.Simulate(tr, cfg)
			if m == "ResNet-20" {
				r20 = res
			} else {
				r56 = res
			}
		}
		return r20, r56, nil
	}
	a20, a56, err := run(arch.AthenaConfig())
	if err != nil {
		return "fig 8: " + err.Error()
	}
	fmt.Fprintf(&b, "%-22s %12.1f %12.1f %9.0f%%\n", "Athena accel", a20.TimeMS, a56.TimeMS, a20.MACCycleShare*100)
	for _, name := range []string{"CraterLake", "SHARP"} {
		cfg, err := arch.ForeignAthenaConfig(name)
		if err != nil {
			return "fig 8: " + err.Error()
		}
		f20, f56, err := run(cfg)
		if err != nil {
			return "fig 8: " + err.Error()
		}
		fmt.Fprintf(&b, "%-22s %12.1f %12.1f %9.0f%%  (%.1fx slower)\n",
			cfg.Name, f20.TimeMS, f56.TimeMS, f20.MACCycleShare*100, f20.TimeMS/a20.TimeMS)
	}
	return b.String()
}

// Fig9 renders the execution-time breakdown.
func Fig9() string {
	mr, err := simulateAll()
	if err != nil {
		return "fig 9: " + err.Error()
	}
	cats := []compiler.Category{compiler.CatLinear, compiler.CatActivation, compiler.CatPooling, compiler.CatSoftmax, compiler.CatConvert}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: execution time breakdown (w7a7, %% of total)\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, c := range cats {
		fmt.Fprintf(&b, " %10s", c)
	}
	fmt.Fprintln(&b)
	for _, m := range qnn.BenchmarkModels {
		r := mr.w7[m]
		fmt.Fprintf(&b, "%-12s", m)
		for _, c := range cats {
			fmt.Fprintf(&b, " %9.1f%%", r.TimeByCat[c]/r.TimeMS*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig10 renders the energy breakdown.
func Fig10() string {
	mr, err := simulateAll()
	if err != nil {
		return "fig 10: " + err.Error()
	}
	units := []string{"HBM", "SPM", "FRU", "NTT", "Automorphism", "SE", "Static"}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10: energy breakdown (%% of total)\n")
	fmt.Fprintf(&b, "%-18s", "")
	for _, u := range units {
		fmt.Fprintf(&b, " %7s", abbrev(u))
	}
	fmt.Fprintf(&b, " %9s\n", "total J")
	for _, m := range qnn.BenchmarkModels {
		for _, mode := range []string{"w7a7", "w6a7"} {
			r := mr.w7[m]
			if mode == "w6a7" {
				r = mr.w6[m]
			}
			fmt.Fprintf(&b, "%-18s", m+"-"+mode)
			for _, u := range units {
				fmt.Fprintf(&b, " %6.1f%%", r.EnergyByUnit[u]/r.EnergyJ*100)
			}
			fmt.Fprintf(&b, " %9.3f\n", r.EnergyJ)
		}
	}
	return b.String()
}

func abbrev(u string) string {
	if u == "Automorphism" {
		return "Auto"
	}
	return u
}

// Fig13 renders the lane-sensitivity sweep.
func Fig13() string {
	qn, err := compiler.SpecModel("ResNet-20", 7, 7)
	if err != nil {
		return "fig 13: " + err.Error()
	}
	tr, err := compiler.Compile(qn, core.FullParams())
	if err != nil {
		return "fig 13: " + err.Error()
	}
	lanes := []int{256, 512, 1024, 2048}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13: sensitivity to unit lanes (ResNet-20 w7a7, normalized to 2048)\n")
	fmt.Fprintf(&b, "%-14s %6s %8s %8s %8s %8s\n", "unit", "lanes", "delay", "energy", "EDP", "EDAP")
	for _, u := range arch.SensitivityUnits {
		pts, err := arch.LaneSensitivity(tr, u, lanes)
		if err != nil {
			return "fig 13: " + err.Error()
		}
		for _, p := range pts {
			fmt.Fprintf(&b, "%-14s %6d %8.3f %8.3f %8.3f %8.3f\n", p.Unit, p.Lanes, p.Delay, p.Energy, p.EDP, p.EDAP)
		}
	}
	return b.String()
}

// Fig12Perf renders the performance half of the quantization sweep
// (the accuracy half lives in accuracy.go).
func Fig12Perf() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 (performance): runtime across quantization precision (ms)\n")
	type pt struct{ w, a int }
	modes := []pt{{4, 4}, {5, 5}, {6, 6}, {6, 7}, {7, 7}, {8, 8}}
	fmt.Fprintf(&b, "%-12s", "")
	for _, m := range modes {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("w%da%d", m.w, m.a))
	}
	fmt.Fprintln(&b)
	for _, model := range qnn.BenchmarkModels {
		fmt.Fprintf(&b, "%-12s", model)
		times := make([]float64, len(modes))
		base := 0.0
		for i, m := range modes {
			r, err := SimulateModel(model, m.w, m.a)
			if err != nil {
				return "fig 12: " + err.Error()
			}
			times[i] = r.TimeMS
			if m.w == 7 && m.a == 7 {
				base = r.TimeMS
			}
		}
		for _, tm := range times {
			fmt.Fprintf(&b, " %9.1f", tm)
		}
		fmt.Fprintf(&b, "   (w8a8/w7a7 = %.2fx)\n", times[len(times)-1]/base)
	}
	return b.String()
}

// Throughput renders the batched-inference study: per-image latency and
// throughput as the batch fills the shared FBS packs (the framework's
// extension beyond the paper's single-image latency focus).
func Throughput() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput: batched inference on the Athena accelerator (w7a7)\n")
	fmt.Fprintf(&b, "%-10s %6s %12s %14s %12s\n", "model", "batch", "total ms", "ms/image", "images/s")
	for _, model := range []string{"MNIST", "LeNet", "ResNet-20"} {
		qn, err := compiler.SpecModel(model, 7, 7)
		if err != nil {
			return "throughput: " + err.Error()
		}
		for _, batch := range []int{1, 4, 16} {
			tr, err := compiler.CompileWithOptions(qn, core.FullParams(), compiler.Options{BatchSize: batch})
			if err != nil {
				return "throughput: " + err.Error()
			}
			r := arch.Simulate(tr, arch.AthenaConfig())
			per := r.TimeMS / float64(batch)
			fmt.Fprintf(&b, "%-10s %6d %12.1f %14.2f %12.1f\n",
				model, batch, r.TimeMS, per, 1000/per)
		}
	}
	return b.String()
}
