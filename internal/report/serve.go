package report

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
	serveclient "athena/internal/serve/client"
	"athena/internal/store"
)

// serveThroughputRows measures the serving stack end to end: an
// in-process athena-serve instance hosting the wire demo network, driven
// over real TCP by 1, 4, and 16 concurrent clients sharing one uploaded
// session. Each row records the wall time per request (ns_op, so the
// regression gate applies), the realized requests/sec, and the mean
// batch size the dynamic batcher achieved for that concurrency — the
// number that shows shared-FBS amortization kicking in as load grows.
//
// The server runs with the durable session tier enabled (a temp data
// dir), so these rows also gate the store's hot-path overhead: resident
// hits never touch disk, and the regression tolerance catches any
// creep.
func serveThroughputRows(out map[string]KernelResult) error {
	p := core.TestParams()
	model := serve.DemoNet()
	dataDir, err := os.MkdirTemp("", "athena-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	srv, err := serve.NewServer(serve.Config{
		Params:   p,
		Models:   map[string]*qnn.QNetwork{model.Name: model},
		MaxBatch: 16,
		MaxWait:  25 * time.Millisecond,
		MaxQueue: 256,
		DataDir:  dataDir,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	//lint:allow goleak the accept loop exits when the deferred Shutdown closes the listener
	go srv.Serve(ln)
	defer srv.Shutdown()

	eng, err := core.NewEngine(p)
	if err != nil {
		return err
	}

	const rounds = 2
	for _, clients := range []int{1, 4, 16} {
		cs := make([]*serveclient.Client, clients)
		closeAll := func() {
			for _, c := range cs {
				if c != nil {
					c.Close()
				}
			}
		}
		var sessID string
		for i := range cs {
			c, err := serveclient.Dial(ln.Addr().String(), eng, serveclient.Options{})
			if err != nil {
				closeAll()
				return err
			}
			cs[i] = c
			if i == 0 {
				if sessID, err = c.OpenSession(); err != nil {
					closeAll()
					return err
				}
			} else if err := c.Attach(sessID); err != nil {
				closeAll()
				return err
			}
		}

		// Encryption shares one PRNG stream, so inputs are prepared
		// serially up front; the measured section is transport + serving.
		ins := make([]*core.EncryptedInput, clients)
		for i := range ins {
			in, err := eng.EncryptInput(model, serve.DemoInput(uint64(i+1)))
			if err != nil {
				closeAll()
				return err
			}
			ins[i] = in
		}

		// One warm-up request primes per-session plan caches.
		if _, err := cs[0].InferEncrypted(model, ins[0], 0); err != nil {
			closeAll()
			return err
		}

		before := srv.Metrics()
		start := time.Now()
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i := range cs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if _, err := cs[i].InferEncrypted(model, ins[i], 0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := srv.Metrics()
		closeAll()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("report: serve throughput clients=%d: %w", clients, err)
			}
		}

		total := clients * rounds
		batches := after.Batches - before.Batches
		images := after.Images - before.Images
		row := KernelResult{
			NsOp:      elapsed.Nanoseconds() / int64(total),
			ReqPerSec: float64(total) / elapsed.Seconds(),
		}
		if batches > 0 {
			row.MeanBatch = float64(images) / float64(batches)
		}
		out[fmt.Sprintf("ServeThroughput/clients=%d", clients)] = row
	}
	return nil
}

// sessionColdLoadRow measures the durable tier's worst case: attaching
// to a session whose keys live only on disk. Each iteration uses a
// fresh registry over the same store, so the measured path is the full
// cold load — segment read, digest verification, streamed bundle
// decode, and evaluation-engine rebuild.
func sessionColdLoadRow(out map[string]KernelResult) error {
	p := core.TestParams()
	eng, err := core.NewEngine(p)
	if err != nil {
		return err
	}
	var blob bytes.Buffer
	if err := eng.WriteEvalKeys(&blob); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "athena-bench-coldload-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	seed := serve.NewRegistry(p, 0)
	seed.SetStore(st)
	s, _, err := seed.Open(blob.Bytes())
	if err != nil {
		return err
	}
	id := s.ID
	// Spill the memtable so the load is a real segment read.
	if err := st.Flush(); err != nil {
		return err
	}

	const iters = 5
	start := time.Now()
	for i := 0; i < iters; i++ {
		r := serve.NewRegistry(p, 0)
		r.SetStore(st)
		if _, err := r.Lookup(id); err != nil {
			return fmt.Errorf("report: cold load: %w", err)
		}
	}
	out["SessionColdLoad"] = KernelResult{NsOp: time.Since(start).Nanoseconds() / iters}
	return nil
}
