package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareKernelBenchmarksFlagsRegressions(t *testing.T) {
	base := map[string]KernelResult{
		"ntt_forward": {NsOp: 1000},
		"pack":        {NsOp: 2000},
		"gone":        {NsOp: 5},
	}
	cur := map[string]KernelResult{
		"ntt_forward": {NsOp: 1200}, // +20%: inside a 25% tolerance
		"pack":        {NsOp: 2600}, // +30%: regression
		"fresh":       {NsOp: 7},    // new row: reported, never flagged
	}
	table, flagged := CompareKernelBenchmarks(base, cur, 0.25)
	if len(flagged) != 1 || flagged[0] != "pack" {
		t.Fatalf("flagged = %v, want [pack]", flagged)
	}
	for _, want := range []string{"+20.0%", "+30.0% !!", "new", "missing"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	// Tightening the tolerance flags the +20% row too.
	_, flagged = CompareKernelBenchmarks(base, cur, 0.1)
	if len(flagged) != 2 {
		t.Fatalf("flagged at tol=0.1: %v, want 2 rows", flagged)
	}
}

func TestReadKernelBenchmarksRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `{"pack": {"ns_op": 42, "allocs_op": 1, "bytes_op": 64}}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelBenchmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["pack"].NsOp != 42 || got["pack"].BytesOp != 64 {
		t.Fatalf("round trip: %+v", got["pack"])
	}
	if _, err := ReadKernelBenchmarks(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing baseline should error")
	}
}
