package report

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"testing"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/core"
	"athena/internal/fbs"
	"athena/internal/lwe"
	"athena/internal/pack"
	"athena/internal/qnn"
	"athena/internal/ring"
)

// KernelResult is one row of the kernel benchmark report: the schema of
// BENCH_kernels.json is  name -> {ns_op, allocs_op, bytes_op}. The
// serving rows (ServeThroughput/clients=N) additionally carry the
// realized requests/sec and mean batch size; ns_op there is wall time
// per request, so the regression gate covers them uniformly.
type KernelResult struct {
	NsOp      int64   `json:"ns_op"`
	AllocsOp  int64   `json:"allocs_op"`
	BytesOp   int64   `json:"bytes_op"`
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	MeanBatch float64 `json:"mean_batch,omitempty"`
}

// kernelNTTRing builds the ring used by the standalone NTT kernel rows: a
// representative single-limb transform at N = 2^12 (the pipeline kernels
// below run at the full test-scale parameter set).
func kernelNTTRing() (*ring.Ring, error) {
	primes, err := ring.GenerateNTTPrimes(50, 12, 1)
	if err != nil {
		return nil, err
	}
	return ring.NewRing(12, primes)
}

// KernelBenchmarks measures the hot kernels the paper's Section 5
// microbenchmarks track — NTT forward/inverse, plaintext and ciphertext
// multiplication, keyswitching (as a slot rotation), LWE packing, one
// FBS evaluation, and an end-to-end tiny-CNN inference — all at the
// test-scale parameter set (NTT rows at N=2^12). Results are keyed by
// kernel name; deterministic inputs make runs comparable over time.
func KernelBenchmarks() (map[string]KernelResult, error) {
	out := map[string]KernelResult{}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		out[name] = KernelResult{
			NsOp:     r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
	}

	// Standalone NTT rows.
	nttRing, err := kernelNTTRing()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(42, 42))
	p := nttRing.NewPoly()
	for j := range p.Coeffs[0] {
		p.Coeffs[0][j] = nttRing.Moduli[0].Reduce(rng.Uint64())
	}
	record("ntt_forward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nttRing.Tables[0].Forward(p.Coeffs[0])
		}
	})
	record("ntt_inverse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nttRing.Tables[0].Inverse(p.Coeffs[0])
		}
	})
	// Radix-4 reference rows: the pre-radix-8 schedule kept as a
	// bit-identical oracle. Tracking both makes the radix-8 win visible
	// in the report and catches a schedule regression in either.
	record("ntt_forward_r4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nttRing.Tables[0].ForwardRadix4(p.Coeffs[0])
		}
	})
	record("ntt_inverse_r4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nttRing.Tables[0].InverseRadix4(p.Coeffs[0])
		}
	})

	// Pipeline kernels at the test-scale engine parameters.
	cp := core.TestParams()
	bp, err := cp.BFVParameters()
	if err != nil {
		return nil, err
	}
	ctx, err := bfv.NewContext(bp)
	if err != nil {
		return nil, err
	}
	kg := bfv.NewKeyGenerator(ctx, cp.Seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(ctx, pk, cp.Seed^0xbe4c)
	cod := bfv.NewEncoder(ctx)

	lweSK := lwe.NewSecretKey(cp.LWEDim, cp.Seed^0x17e)
	packer, err := pack.NewPacker(ctx, enc, lweSK)
	if err != nil {
		return nil, err
	}
	keys := kg.GenKeySet(sk, packer.GaloisElements())
	ev := bfv.NewEvaluator(ctx, keys)

	vals := make([]int64, ctx.N)
	for i := range vals {
		vals[i] = int64(rng.IntN(int(cp.T)))
	}
	ct := enc.Encrypt(cod.EncodeSlots(vals))
	ct2 := enc.Encrypt(cod.EncodeSlots(vals))
	pm := cod.LiftToMul(cod.EncodeSlots(vals))
	acc := enc.Encrypt(cod.EncodeSlots(vals))

	record("pmult", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.MulPlainAndAdd(ct, pm, acc)
		}
	})
	record("cmult", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Mul(ct, ct2); err != nil {
				b.Fatal(err)
			}
		}
	})
	rotEl := packer.GaloisElements()[0]
	record("keyswitch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Automorphism(ct, rotEl); err != nil {
				b.Fatal(err)
			}
		}
	})

	smp := lwe.NewStream(cp.Seed ^ 0xacc)
	cts := make([]lwe.Ciphertext, ctx.N)
	for i := range cts {
		cts[i] = lwe.Encrypt(lweSK, uint64(rng.IntN(int(cp.T))), cp.T, cp.Sigma, smp)
	}
	var packed *bfv.Ciphertext
	record("pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			packed, err = packer.Pack(ev, cts)
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	relu, err := fbs.NewEvaluator(ctx, fbs.NewLUT(cp.T, func(x int64) int64 {
		if x < 0 {
			return 0
		}
		return x
	}))
	if err != nil {
		return nil, err
	}
	record("fbs_eval", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relu.Evaluate(ev, packed); err != nil {
				b.Fatal(err)
			}
		}
	})

	eng, err := core.NewEngine(cp)
	if err != nil {
		return nil, err
	}
	net := kernelTinyNet()
	x := qnn.NewIntTensor(1, 6, 6)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	record("infer_e2e", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Infer(net, x); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Operator-level multicore rows: the same end-to-end inference with
	// the worker count pinned to p. On machines with fewer than p cores
	// the rows saturate at the hardware parallelism — compare them
	// against the host's nproc when reading scaling numbers.
	for _, procs := range []int{1, 2, 4, 8} {
		procs := procs
		record(fmt.Sprintf("EncryptedInference/p=%d", procs), func(b *testing.B) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Infer(net, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Serving-layer rows: end-to-end throughput through athena-serve at
	// increasing client concurrency.
	if err := serveThroughputRows(out); err != nil {
		return nil, err
	}
	// Durable-tier row: rebuilding an evicted session from disk.
	if err := sessionColdLoadRow(out); err != nil {
		return nil, err
	}
	// Cluster rows: the same traffic through the ASV1 router at 1, 2,
	// and 3 nodes — the horizontal-scaling curve.
	if err := clusterThroughputRows(out); err != nil {
		return nil, err
	}
	return out, nil
}

// kernelTinyNet mirrors the tiny conv→conv→dense network of the root
// end-to-end benchmark, with deterministic weights.
func kernelTinyNet() *qnn.QNetwork {
	rng := rand.New(rand.NewPCG(99, 99))
	mk := func(shape coeffenc.ConvShape, act qnn.Activation, mult float64) *qnn.QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &qnn.QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120}
	}
	return &qnn.QNetwork{
		Name: "kernel-bench", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			mk(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8),
		}},
	}
}

// WriteKernelBenchmarks runs KernelBenchmarks and writes the JSON report
// to path (the BENCH_kernels.json artifact).
func WriteKernelBenchmarks(path string) error {
	res, err := KernelBenchmarks()
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// Kernels renders the kernel benchmark table as text (the -only kernels
// experiment of athena-bench).
func Kernels() string {
	res, err := KernelBenchmarks()
	if err != nil {
		return "kernels: " + err.Error()
	}
	names := make([]string, 0, len(res))
	for n := range res {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("Kernel microbenchmarks (test scale; NTT at N=2^12)\n%-26s %14s %12s %14s\n", "kernel", "ns/op", "allocs/op", "B/op")
	for _, n := range names {
		r := res[n]
		s += fmt.Sprintf("%-26s %14d %12d %14d", n, r.NsOp, r.AllocsOp, r.BytesOp)
		if r.ReqPerSec > 0 {
			s += fmt.Sprintf("   %8.2f req/s, mean batch %.2f", r.ReqPerSec, r.MeanBatch)
		}
		s += "\n"
	}
	return s
}
