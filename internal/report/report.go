// Package report computes and renders every table and figure of the
// paper's evaluation section as text. It is shared by cmd/athena-bench
// and the root-level benchmark harness; EXPERIMENTS.md records the
// outputs against the paper's values.
package report

import (
	"fmt"
	"strings"

	"athena/internal/arch"
	"athena/internal/ckksref"
	"athena/internal/compiler"
	"athena/internal/core"
	"athena/internal/noise"
)

// Table1 renders the solution-comparison table.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: solutions for CNN under FHE\n")
	fmt.Fprintf(&b, "%-18s %-14s %7s %6s %10s %10s %9s %8s\n",
		"method", "scheme", "degree", "logQ", "cipher", "keys", "dataset", "acc(c/p)")
	for _, s := range ckksref.Table1() {
		fmt.Fprintf(&b, "%-18s %-14s %7d %6d %10s %10s %9s %5.2f/%.2f\n",
			s.Name, s.Scheme, s.Degree, s.LogQ,
			mb(int64(s.CiphertextBytes())), mb(s.KeyBytes()), s.Dataset, s.AccCipher, s.AccPlain)
	}
	cr, kr := ckksref.SizeRatioVsCKKS()
	fmt.Fprintf(&b, "Athena vs CKKS: ciphertext %.1fx smaller, keys %.1fx smaller (paper: 3-6x)\n", cr, kr)
	return b.String()
}

// Fig1 renders the Δ-sensitivity study.
func Fig1(maxOrder int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: bit accuracy of series expansions under Δ-bit fixed point\n")
	fmt.Fprintf(&b, "%-8s %-10s %6s | %8s %6s %6s %6s %6s\n",
		"fn", "approx", "order", "plain", "Δ=25", "Δ=30", "Δ=35", "Δ=40")
	for _, f := range []ckksref.Fn{ckksref.ReLU, ckksref.Sigmoid} {
		for _, a := range []ckksref.Approx{ckksref.Taylor, ckksref.Chebyshev} {
			for order := 3; order <= maxOrder; order += 8 {
				fmt.Fprintf(&b, "%-8s %-10s %6d | %8.2f %6.2f %6.2f %6.2f %6.2f\n",
					f, a, order,
					ckksref.BitAccuracy(f, a, order, 0),
					ckksref.BitAccuracy(f, a, order, 25),
					ckksref.BitAccuracy(f, a, order, 30),
					ckksref.BitAccuracy(f, a, order, 35),
					ckksref.BitAccuracy(f, a, order, 40))
			}
		}
	}
	return b.String()
}

// Table2 renders the valid-data-ratio comparison.
func Table2() string {
	shapes, athena, cheetah, err := arch.ValidRatioTable(1 << 15)
	if err != nil {
		return "table 2: " + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: valid-data ratios at N=2^15\n")
	fmt.Fprintf(&b, "%-30s %10s %10s\n", "(HW,Cin,Cout,k,stride,pad)", "cheetah", "athena")
	for i, s := range shapes {
		fmt.Fprintf(&b, "(%d^2,%d,%d,%d,%d,%d)%*s %9.2f%% %9.2f%%\n",
			s.H, s.Cin, s.Cout, s.K, s.Stride, s.Pad, 12-len(fmt.Sprint(s.Cin, s.Cout)), "",
			cheetah[i]*100, athena[i]*100)
	}
	return b.String()
}

// Table3 renders the asymptotic complexity comparison.
func Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: computational complexity\n")
	fmt.Fprintf(&b, "%-12s %-10s %-14s %-8s %-14s\n", "solution", "operation", "PMult", "CMult", "HRot")
	for _, r := range compiler.Table3() {
		fmt.Fprintf(&b, "%-12s %-10s %-14s %-8s %-14s\n", r.Solution, r.Operation, r.PMult, r.CMult, r.HRot)
	}
	return b.String()
}

// Table4 renders the noise-budget accounting.
func Table4() string {
	m := noise.PaperModel()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: noise (bits) per Athena step (N=2^%d, t=2^%d, logQ=%d)\n",
		m.LogN, m.LogT, m.LogQ)
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %6s %8s\n", "step", "PMult", "CMult", "SMult", "HAdd", "noise")
	for _, r := range m.Table4() {
		fmt.Fprintf(&b, "%-10s %6d %6d %6d %6d %8d\n", r.Step, r.PMult, r.CMult, r.SMult, r.HAdd, r.Bits)
	}
	t := m.Total()
	fmt.Fprintf(&b, "%-10s %6d %6d %6d %6d %8d  (Δ/2 slack: %d bits, budget ok: %v)\n",
		"Total", t.PMult, t.CMult, t.SMult, t.HAdd, t.Bits, m.BudgetSlackBits(), m.BudgetOK())
	return b.String()
}

// Table8 renders the memory comparison.
func Table8() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: memory-related comparison\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %10s\n", "accelerator", "HBM", "BW", "scratchpad", "spmBW")
	for _, r := range arch.Table8() {
		fmt.Fprintf(&b, "%-12s %6.0fGB %5.0fTB/s %10.0fMB %7.0fTB/s\n",
			r.Accelerator, r.HBMCapGB, r.HBMBWTBs, r.ScratchpadMB, r.ScratchBWTBs)
	}
	return b.String()
}

// Table9 renders the area/power breakdown.
func Table9() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 9: area and power breakdown (@1GHz, 7nm)\n")
	fmt.Fprintf(&b, "%-26s %10s %10s\n", "component", "area mm2", "power W")
	for _, r := range arch.Table9() {
		fmt.Fprintf(&b, "%-26s %10.2f %10.2f\n", r.Component, r.AreaMM2, r.PowerW)
	}
	a, p := arch.TotalAreaPower()
	fmt.Fprintf(&b, "%-26s %10.2f %10.2f\n", "Sum", a, p)
	for _, bl := range arch.Baselines() {
		fmt.Fprintf(&b, "%-26s %10.2f %10s  (%.2fx larger than Athena)\n",
			bl.Name, bl.AreaMM2, "-", bl.AreaMM2/a)
	}
	return b.String()
}

func mb(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	}
	return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
}

// SimulateModel compiles and simulates one benchmark at the given
// quantization mode on the Athena accelerator (full-scale parameters).
func SimulateModel(model string, w, a int) (*arch.Result, error) {
	qn, err := compiler.SpecModel(model, w, a)
	if err != nil {
		return nil, err
	}
	tr, err := compiler.Compile(qn, core.FullParams())
	if err != nil {
		return nil, err
	}
	return arch.Simulate(tr, arch.AthenaConfig()), nil
}
