package store

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
)

// Blob is a random-access handle on one stored value, served either
// from the memtable (no file descriptor) or from a segment's data
// region (its own descriptor, immune to concurrent compaction deleting
// the file). The expected digest travels with the handle so callers can
// verify without a second lookup.
type Blob struct {
	ra     io.ReaderAt
	size   int64
	digest [sha256.Size]byte
	f      *os.File // nil for memtable blobs
}

// memReaderAt serves a memtable value. The slice is immutable once
// installed (Put stores a private copy), so no lock is needed.
type memReaderAt struct{ val []byte }

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.val)) {
		return 0, fmt.Errorf("store: blob read at %d out of range", off)
	}
	n := copy(p, m.val[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func newMemBlob(val []byte, digest [sha256.Size]byte) *Blob {
	return &Blob{ra: memReaderAt{val: val}, size: int64(len(val)), digest: digest}
}

func newFileBlob(f *os.File, base, size int64, digest [sha256.Size]byte) *Blob {
	return &Blob{ra: &blobReaderAt{f: f, base: base, size: size}, size: size, digest: digest, f: f}
}

// Size returns the value length in bytes.
func (b *Blob) Size() int64 { return b.size }

// Digest returns the SHA-256 of the full value as recorded at write
// time. Verify (or an incremental hash over all bytes read) checks the
// bytes actually on disk against it.
func (b *Blob) Digest() [sha256.Size]byte { return b.digest }

// ReadAt reads from the value at off, io.ReaderAt semantics.
func (b *Blob) ReadAt(p []byte, off int64) (int, error) { return b.ra.ReadAt(p, off) }

// Verify streams the whole value through SHA-256 and compares against
// the recorded digest, catching disk corruption before the bytes are
// trusted by a decoder.
func (b *Blob) Verify() error {
	h := sha256.New()
	buf := make([]byte, 1<<20)
	var off int64
	for off < b.size {
		n := len(buf)
		if rem := b.size - off; rem < int64(n) {
			n = int(rem)
		}
		if _, err := readFullAt(b.ra, buf[:n], off); err != nil {
			return err
		}
		_, _ = h.Write(buf[:n]) // hash.Hash.Write never errors
		off += int64(n)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	if sum != b.digest {
		return fmt.Errorf("store: blob digest mismatch")
	}
	return nil
}

// Close releases the underlying file descriptor, if any.
func (b *Blob) Close() error {
	if b.f == nil {
		return nil
	}
	return b.f.Close()
}

// readFullAt is io.ReadFull over a ReaderAt: short reads are retried at
// the advanced offset, so a flaky reader that returns partial counts
// still fills p or errors.
func readFullAt(ra io.ReaderAt, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n, err := ra.ReadAt(p[total:], off+int64(total))
		total += n
		if total == len(p) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, io.ErrUnexpectedEOF
		}
	}
	return total, nil
}
