// Package store is the durable session tier behind the serve registry:
// a disk-backed, content-addressed key/value store in the LSM style. An
// uploaded eval-key blob is crash-safe the moment Put returns — it is
// appended to a write-ahead log in digest-verified chunks and fsync'd —
// and survives process restarts: Open replays the WAL idempotently and
// reattaches the immutable segment files that earlier memtable spills
// produced. Cold entries live in SSTable-style segments with an index
// block and a bloom filter (registry misses are answered without
// touching the data region), size-tiered compaction folds segment runs
// together, and tombstones mask deleted entries until a compaction that
// includes the oldest run drops them for good.
//
// The store never interprets values: integrity is per-entry (a SHA-256
// digest checked on load, chunk CRCs in the WAL) and the serving layer
// keys entries by content address, so identical key material re-lands
// on the same entry across restarts and clients.
package store

// bloomFilter is a split-block-free standard bloom filter over string
// keys using double hashing (one FNV-1a pass, one splitmix64 finalizer
// for the second hash). It answers "definitely absent" for cold
// registry misses without reading a segment's data or index from disk
// more than once per open.
type bloomFilter struct {
	k     uint32
	words []uint64
}

// bloomBitsPerKey sizes segment filters: 10 bits/key with k=7 gives a
// ~1% theoretical false-positive rate (bounded by the property test at
// 3% measured).
const bloomBitsPerKey = 10

// newBloom builds a filter sized for n keys at bloomBitsPerKey.
func newBloom(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	bits := n * bloomBitsPerKey
	words := (bits + 63) / 64
	// k = bitsPerKey * ln2 ≈ 0.69*10, clamped to a sane band.
	return &bloomFilter{k: 7, words: make([]uint64, words)}
}

// bloomHash derives the two independent 64-bit hashes of the double
// hashing scheme: FNV-1a over the key bytes, then a splitmix64
// finalizer of that value (forced odd so the probe stride never
// collapses mod the filter size).
func bloomHash(id string) (uint64, uint64) {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return h, z | 1
}

// add inserts one key.
func (f *bloomFilter) add(id string) {
	h1, h2 := bloomHash(id)
	m := uint64(len(f.words)) * 64
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		f.words[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether id may be present: false means definitely
// absent. This is the segment-miss fast path consulted on every cold
// registry lookup, so it must stay allocation-free.
//
//lint:noalloc
func (f *bloomFilter) MayContain(id string) bool {
	if len(f.words) == 0 {
		return false
	}
	h1, h2 := bloomHash(id)
	m := uint64(len(f.words)) * 64
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
