package store

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T) (*walWriter, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return &walWriter{f: f}, path
}

func replayAll(t *testing.T, path string) ([]walOp, int64, int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ops []walOp
	good, dropped, err := replayWAL(f, func(op walOp) { ops = append(ops, op) })
	if err != nil {
		t.Fatalf("replayWAL: %v", err)
	}
	return ops, good, dropped
}

func TestWALRoundTrip(t *testing.T) {
	w, path := openTestWAL(t)
	rng := rand.New(rand.NewSource(1))
	type rec struct {
		del bool
		id  string
		val []byte
	}
	var want []rec
	for i := 0; i < 20; i++ {
		id := string(rune('a'+i%7)) + "key"
		if i%5 == 4 {
			want = append(want, rec{del: true, id: id})
			if err := w.appendRecord(walDelete, id, nil); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Mix sizes across the chunk boundary, including multi-chunk.
		n := 1 + rng.Intn(3*walChunkSize/2)
		val := make([]byte, n)
		rng.Read(val)
		want = append(want, rec{id: id, val: val})
		if err := w.appendRecord(walPut, id, val); err != nil {
			t.Fatal(err)
		}
	}
	ops, good, dropped := replayAll(t, path)
	if dropped != 0 {
		t.Fatalf("clean log dropped %d bytes", dropped)
	}
	if good != w.off {
		t.Fatalf("good=%d writer off=%d", good, w.off)
	}
	if len(ops) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(ops), len(want))
	}
	for i, op := range ops {
		if op.del != want[i].del || op.id != want[i].id || !bytes.Equal(op.val, want[i].val) {
			t.Fatalf("record %d mismatch", i)
		}
		if !op.del {
			if op.digest != sha256.Sum256(want[i].val) {
				t.Fatalf("record %d digest mismatch", i)
			}
		}
	}
}

// Replaying the same log twice must produce identical state — the crash
// path re-runs replay over a log that may already be reflected in
// segments.
func TestWALReplayIdempotent(t *testing.T) {
	w, path := openTestWAL(t)
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i%3))
		if err := w.appendRecord(walPut, id, bytes.Repeat([]byte{byte(i)}, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.appendRecord(walDelete, "b", nil); err != nil {
		t.Fatal(err)
	}
	apply := func() map[string][]byte {
		state := map[string][]byte{}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		_, _, err = replayWAL(f, func(op walOp) {
			if op.del {
				delete(state, op.id)
			} else {
				state[op.id] = op.val
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return state
	}
	once, twice := apply(), apply()
	if len(once) != len(twice) {
		t.Fatalf("replay not idempotent: %d vs %d keys", len(once), len(twice))
	}
	for id, val := range once {
		if !bytes.Equal(twice[id], val) {
			t.Fatalf("replay not idempotent for %q", id)
		}
	}
	if _, ok := once["b"]; ok {
		t.Fatal("tombstoned key survived replay")
	}
}

// A torn tail — the log cut at any byte short of the last record
// boundary — must drop exactly the torn record(s) and keep every intact
// prefix record.
func TestWALTruncatedTailDropped(t *testing.T) {
	w, path := openTestWAL(t)
	var bounds []int64
	for i := 0; i < 5; i++ {
		if err := w.appendRecord(walPut, "key", bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, w.off)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		tpath := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ops, good, dropped := replayAll(t, tpath)
		// The intact prefix is the largest record boundary ≤ cut.
		wantRecs, wantGood := 0, int64(0)
		for i, b := range bounds {
			if b <= cut {
				wantRecs, wantGood = i+1, b
			}
		}
		if len(ops) != wantRecs || good != wantGood || dropped != cut-wantGood {
			t.Fatalf("cut=%d: got %d recs good=%d dropped=%d, want %d recs good=%d dropped=%d",
				cut, len(ops), good, dropped, wantRecs, wantGood, cut-wantGood)
		}
	}
}

// A bit flip anywhere in the final record must invalidate it (CRC or
// digest or header validation) while preserving intact earlier records.
func TestWALBitFlippedTailDropped(t *testing.T) {
	w, path := openTestWAL(t)
	if err := w.appendRecord(walPut, "first", bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	firstEnd := w.off
	if err := w.appendRecord(walPut, "second", bytes.Repeat([]byte{2}, 128)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := firstEnd; pos < int64(len(full)); pos++ {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		tpath := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(tpath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		ops, good, _ := replayAll(t, tpath)
		if len(ops) != 1 || ops[0].id != "first" || good != firstEnd {
			t.Fatalf("flip at %d: got %d recs good=%d, want 1 rec good=%d", pos, len(ops), good, firstEnd)
		}
	}
}

func TestWALRejectsBadRecords(t *testing.T) {
	w, _ := openTestWAL(t)
	if err := w.appendRecord(walPut, "", []byte{1}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := w.appendRecord(walPut, "id", nil); err == nil {
		t.Fatal("empty put value accepted")
	}
	long := bytes.Repeat([]byte{'x'}, walMaxIDLen+1)
	if err := w.appendRecord(walPut, string(long), []byte{1}); err == nil {
		t.Fatal("oversized id accepted")
	}
}
