package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Immutable segment files ("SSTables"). A memtable spill or a
// compaction writes one segment: the values concatenated in key order,
// then an index block (key → offset, length, SHA-256 digest, tombstone
// flag), then a bloom filter over the keys, then a fixed footer
// locating the blocks. The index and bloom are covered by a CRC-32C in
// the footer and loaded into memory at open; values stay on disk and
// are digest-verified when loaded. Segments are written to a temp path,
// fsync'd, and renamed into place, so a crash mid-spill leaves only a
// *.tmp file that Open discards — a visible segment is always complete.
//
// File layout (little-endian):
//
//	magic(u32 "ASG1") | version(u32)
//	values (concatenated, key order)
//	index: count(u32) | per entry: idLen(u16) | id | off(u64) | vlen(u64) | digest[32] | flags(u8)
//	bloom: k(u32) | nwords(u64) | words
//	footer: indexOff(u64) | indexLen(u64) | bloomOff(u64) | bloomLen(u64) | crc32c(index|bloom)(u32) | magic(u32)
const (
	segMagic   uint32 = 0x41534731 // "ASG1"
	segVersion uint32 = 1

	segHdrLen    = 8
	segFooterLen = 8*4 + 4 + 4

	segFlagTombstone byte = 1
)

// segMeta is one in-memory index entry.
type segMeta struct {
	off    int64
	vlen   int64
	digest [sha256.Size]byte
	tomb   bool
}

// segment is one open, immutable segment file: its index and bloom in
// memory, values read on demand from the file.
type segment struct {
	path  string
	seq   uint64
	size  int64
	ids   []string // sorted ascending
	metas []segMeta
	bloom *bloomFilter
	live  int // non-tombstone entry count
}

// segEntry is one entry handed to writeSegment.
type segEntry struct {
	id     string
	val    []byte // nil for tombstones
	digest [sha256.Size]byte
	tomb   bool
}

// writeSegment writes entries (any order; sorted here) as one segment
// at path via a temp file + rename, fsync'ing both the file and its
// directory, so the segment is either fully visible or not at all.
func writeSegment(path string, entries []segEntry) (int64, error) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for i := 1; i < len(entries); i++ {
		if entries[i].id == entries[i-1].id {
			return 0, fmt.Errorf("store: duplicate key %q in segment write", entries[i].id)
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [segHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}

	// Values, recording offsets.
	off := int64(segHdrLen)
	offs := make([]int64, len(entries))
	for i := range entries {
		offs[i] = off
		if entries[i].tomb {
			continue
		}
		if _, err := bw.Write(entries[i].val); err != nil {
			_ = f.Close() // abandoning the partial segment; the write error wins
			return 0, err
		}
		off += int64(len(entries[i].val))
	}

	// Index block.
	index := binary.LittleEndian.AppendUint32(nil, uint32(len(entries)))
	bloom := newBloom(len(entries))
	for i := range entries {
		e := &entries[i]
		index = binary.LittleEndian.AppendUint16(index, uint16(len(e.id)))
		index = append(index, e.id...)
		index = binary.LittleEndian.AppendUint64(index, uint64(offs[i]))
		index = binary.LittleEndian.AppendUint64(index, uint64(len(e.val)))
		index = append(index, e.digest[:]...)
		flags := byte(0)
		if e.tomb {
			flags = segFlagTombstone
		}
		index = append(index, flags)
		bloom.add(e.id)
	}
	// Bloom block.
	bb := binary.LittleEndian.AppendUint32(nil, bloom.k)
	bb = binary.LittleEndian.AppendUint64(bb, uint64(len(bloom.words)))
	for _, w := range bloom.words {
		bb = binary.LittleEndian.AppendUint64(bb, w)
	}

	indexOff := off
	bloomOff := indexOff + int64(len(index))
	if _, err := bw.Write(index); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}
	if _, err := bw.Write(bb); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}
	crc := crc32.Update(crc32.Checksum(index, castagnoli), castagnoli, bb)
	var foot [segFooterLen]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(foot[8:16], uint64(len(index)))
	binary.LittleEndian.PutUint64(foot[16:24], uint64(bloomOff))
	binary.LittleEndian.PutUint64(foot[24:32], uint64(len(bb)))
	binary.LittleEndian.PutUint32(foot[32:36], crc)
	binary.LittleEndian.PutUint32(foot[36:40], segMagic)
	if _, err := bw.Write(foot[:]); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // abandoning the partial segment; the write error wins
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	if err := syncDir(path); err != nil {
		return 0, err
	}
	return bloomOff + int64(len(bb)) + segFooterLen, nil
}

// openSegment maps a segment file into an in-memory index + bloom. The
// bytes are untrusted (anything can be on disk after a crash): every
// length and offset is validated against the file size, the footer CRC
// covers the index and bloom blocks, and a violation surfaces as an
// error — never a panic or an unbounded allocation.
func openSegment(path string, seq uint64) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < segHdrLen+segFooterLen {
		return nil, fmt.Errorf("store: segment %s: %d bytes is below the minimum layout", path, size)
	}
	var hdr [segHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad magic %#x", path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != segVersion {
		return nil, fmt.Errorf("store: segment %s: unsupported version %d", path, v)
	}
	var foot [segFooterLen]byte
	if _, err := f.ReadAt(foot[:], size-segFooterLen); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(foot[36:40]); m != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad footer magic %#x", path, m)
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	indexLen := int64(binary.LittleEndian.Uint64(foot[8:16]))
	bloomOff := int64(binary.LittleEndian.Uint64(foot[16:24]))
	bloomLen := int64(binary.LittleEndian.Uint64(foot[24:32]))
	wantCRC := binary.LittleEndian.Uint32(foot[32:36])
	if indexOff < segHdrLen || indexLen < 4 || bloomOff != indexOff+indexLen ||
		bloomLen < 12 || bloomOff+bloomLen != size-segFooterLen {
		return nil, fmt.Errorf("store: segment %s: footer block layout out of bounds", path)
	}
	blocks := make([]byte, indexLen+bloomLen)
	if _, err := f.ReadAt(blocks, indexOff); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(blocks, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("store: segment %s: index/bloom crc mismatch (%#x != %#x)", path, got, wantCRC)
	}
	s := &segment{path: path, seq: seq, size: size}
	if err := s.readIndex(blocks[:indexLen], indexOff); err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	if err := s.readBloom(blocks[indexLen:]); err != nil {
		return nil, fmt.Errorf("store: segment %s: %w", path, err)
	}
	return s, nil
}

// readIndex decodes the index block, validating every entry's bounds
// against the data region [segHdrLen, indexOff).
func (s *segment) readIndex(b []byte, indexOff int64) error {
	count := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	// Each entry is at least 2+1+8+8+32+1 bytes; a corrupt count cannot
	// force an allocation beyond the block that is already in memory.
	if count < 0 || count > len(b)/(2+1+8+8+32+1)+1 {
		return fmt.Errorf("index count %d inconsistent with block size %d", count, len(b))
	}
	s.ids = make([]string, 0, count)
	s.metas = make([]segMeta, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 2 {
			return fmt.Errorf("index entry %d: truncated id length", i)
		}
		idLen := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if idLen == 0 || idLen > walMaxIDLen || len(b) < idLen+8+8+sha256.Size+1 {
			return fmt.Errorf("index entry %d: id length %d out of bounds", i, idLen)
		}
		id := string(b[:idLen])
		b = b[idLen:]
		var m segMeta
		m.off = int64(binary.LittleEndian.Uint64(b[0:8]))
		m.vlen = int64(binary.LittleEndian.Uint64(b[8:16]))
		copy(m.digest[:], b[16:16+sha256.Size])
		flags := b[16+sha256.Size]
		b = b[16+sha256.Size+1:]
		m.tomb = flags&segFlagTombstone != 0
		if m.tomb {
			if m.vlen != 0 {
				return fmt.Errorf("index entry %d: tombstone with %d value bytes", i, m.vlen)
			}
		} else {
			if m.vlen <= 0 || m.off < segHdrLen || m.off+m.vlen > indexOff {
				return fmt.Errorf("index entry %d: value [%d,%d) outside data region", i, m.off, m.off+m.vlen)
			}
			s.live++
		}
		if len(s.ids) > 0 && id <= s.ids[len(s.ids)-1] {
			return fmt.Errorf("index entry %d: keys out of order", i)
		}
		s.ids = append(s.ids, id)
		s.metas = append(s.metas, m)
	}
	if len(b) != 0 {
		return fmt.Errorf("%d trailing bytes after index entries", len(b))
	}
	return nil
}

// readBloom decodes the bloom block.
func (s *segment) readBloom(b []byte) error {
	k := binary.LittleEndian.Uint32(b[0:4])
	nwords := binary.LittleEndian.Uint64(b[4:12])
	if k == 0 || k > 64 || nwords != uint64(len(b)-12)/8 || int(nwords)*8 != len(b)-12 {
		return fmt.Errorf("bloom block k=%d nwords=%d inconsistent with %d bytes", k, nwords, len(b))
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[12+8*i:])
	}
	s.bloom = &bloomFilter{k: k, words: words}
	return nil
}

// find locates id in the segment index, bloom-gated: (entry index,
// true) on presence — tombstones included, the caller distinguishes.
// This is the per-segment step of every cold lookup, kept
// allocation-free (manual binary search; sort.Search would capture a
// closure).
//
//lint:noalloc
func (s *segment) find(id string) (int, bool) {
	if !s.bloom.MayContain(id) {
		return 0, false
	}
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.ids) && s.ids[lo] == id {
		return lo, true
	}
	return 0, false
}

// load reads and digest-verifies entry i's value into memory (used by
// compaction and tests; the serving path streams via Blob instead).
func (s *segment) load(i int) ([]byte, error) {
	m := &s.metas[i]
	if m.tomb {
		return nil, fmt.Errorf("store: load of tombstone %q", s.ids[i])
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	val := make([]byte, m.vlen)
	if _, err := f.ReadAt(val, m.off); err != nil {
		return nil, err
	}
	if sum := sha256.Sum256(val); sum != m.digest {
		return nil, fmt.Errorf("store: segment %s entry %q digest mismatch", s.path, s.ids[i])
	}
	return val, nil
}

// syncDir fsyncs the directory containing path, making a rename into it
// durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// blobReaderAt adapts an entry to io.ReaderAt bounded to [off, off+len)
// of its own file descriptor, so compaction deleting the segment path
// under an outstanding reader is safe (the fd keeps the inode alive).
type blobReaderAt struct {
	f    *os.File
	base int64
	size int64
}

func (b *blobReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > b.size {
		return 0, io.EOF
	}
	if max := b.size - off; int64(len(p)) > max {
		p = p[:max]
		n, err := b.f.ReadAt(p, b.base+off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return b.f.ReadAt(p, b.base+off)
}
