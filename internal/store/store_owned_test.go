package store

import (
	"bytes"
	"errors"
	"testing"
)

// TestStoreEvictsUnownedFirst: the disk-cap eviction honors the
// cluster ownership hint — entries this node no longer owns are
// tombstoned before any owned entry, even when the unowned one is the
// most recently accessed.
func TestStoreEvictsUnownedFirst(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{DiskCapBytes: 36 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	val := bytes.Repeat([]byte{0xA5}, 10<<10)
	for _, id := range []string{"aaa", "bbb", "ccc"} {
		if err := s.Put(id, val); err != nil {
			t.Fatal(err)
		}
	}
	// Make the soon-to-be-unowned entry the hottest, so plain LRU would
	// keep it.
	for i := 0; i < 3; i++ {
		b, err := s.Load("bbb")
		if err != nil {
			t.Fatal(err)
		}
		b.Close()
	}
	s.SetEvictionHint(func(id string) bool { return id != "bbb" })

	// Push past the cap; eviction must fall on bbb first.
	if err := s.Put("ddd", val); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bbb"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unowned hot entry: %v, want evicted (ErrNotFound)", err)
	}
	for _, id := range []string{"aaa", "ccc", "ddd"} {
		b, err := s.Load(id)
		if err != nil {
			t.Fatalf("owned entry %s: %v", id, err)
		}
		b.Close()
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
}

// TestStoreEvictionHintCleared: clearing the hint restores pure
// recency order.
func TestStoreEvictionHintCleared(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{DiskCapBytes: 36 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	val := bytes.Repeat([]byte{0x5A}, 10<<10)
	for _, id := range []string{"aaa", "bbb", "ccc"} {
		if err := s.Put(id, val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch all but aaa, making aaa the coldest.
	for _, id := range []string{"bbb", "ccc"} {
		b, err := s.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		b.Close()
	}
	s.SetEvictionHint(func(id string) bool { return id != "bbb" })
	s.SetEvictionHint(nil) // cleared: bbb is no longer preferred

	if err := s.Put("ddd", val); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("aaa"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("coldest entry: %v, want evicted (ErrNotFound)", err)
	}
	b, err := s.Load("bbb")
	if err != nil {
		t.Fatalf("hot entry evicted with hint cleared: %v", err)
	}
	b.Close()
}
