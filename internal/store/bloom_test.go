package store

import (
	"fmt"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	f := newBloom(2000)
	for i := 0; i < 2000; i++ {
		f.add(fmt.Sprintf("member-%d", i))
	}
	for i := 0; i < 2000; i++ {
		if !f.MayContain(fmt.Sprintf("member-%d", i)) {
			t.Fatalf("false negative for member-%d", i)
		}
	}
}

// At 10 bits/key and k=7 the theoretical false-positive rate is ~0.8%;
// the bound here is 3% to leave slack for hash-quality variance.
func TestBloomFalsePositiveRate(t *testing.T) {
	const n, probes = 2000, 10000
	f := newBloom(n)
	for i := 0; i < n; i++ {
		f.add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("outsider-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 0.03 (%d/%d)", rate, fp, probes)
	}
}

func TestBloomEmpty(t *testing.T) {
	f := newBloom(0)
	if f.MayContain("anything") {
		t.Fatal("empty filter claims membership")
	}
	var zero bloomFilter
	if zero.MayContain("anything") {
		t.Fatal("zero-value filter claims membership")
	}
}

func TestBloomMayContainNoAlloc(t *testing.T) {
	f := newBloom(100)
	for i := 0; i < 100; i++ {
		f.add(fmt.Sprintf("k-%d", i))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		f.MayContain("k-42")
		f.MayContain("absent")
	}); allocs != 0 {
		t.Fatalf("MayContain allocates: %.1f allocs/op", allocs)
	}
}
