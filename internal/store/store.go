package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a Load/Get of a key that is absent (or deleted).
var ErrNotFound = errors.New("store: entry not found")

// ErrDiskCap reports a Put that cannot fit under the disk cap even
// after compaction and cold-entry eviction.
var ErrDiskCap = errors.New("store: disk cap exceeded and nothing evictable")

// Options tunes a Store.
type Options struct {
	// MemtableBytes is the spill threshold: when the in-memory tier
	// exceeds it, the memtable is written to an immutable segment and
	// the WAL is truncated (0 = 64 MiB).
	MemtableBytes int64
	// DiskCapBytes bounds total on-disk bytes (segments + WAL). When a
	// Put would exceed it, the store compacts and then evicts the
	// least-recently-accessed entries (tombstone + compaction) to make
	// room (0 = unbounded).
	DiskCapBytes int64
	// CompactAt is the number of same-size-tier adjacent segments that
	// triggers a tiered compaction (0 = 4).
	CompactAt int
}

// Recovery summarizes what Open reconstructed from the data directory.
type Recovery struct {
	// Entries is the live key count after recovery.
	Entries int
	// WALRecords is how many intact WAL records were replayed.
	WALRecords int
	// WALDroppedBytes is the size of the torn/corrupt WAL tail that
	// replay truncated away (0 on a clean shutdown).
	WALDroppedBytes int64
	// Segments is the number of segment files reattached.
	Segments int
	// Quarantined counts segment files that failed validation and were
	// renamed aside rather than served from.
	Quarantined int
}

// Stats is a point-in-time snapshot of store occupancy and lifetime
// counters.
type Stats struct {
	Entries   int   `json:"entries"`
	MemBytes  int64 `json:"mem_bytes"`
	WALBytes  int64 `json:"wal_bytes"`
	DiskBytes int64 `json:"disk_bytes"`
	Segments  int   `json:"segments"`

	Puts           uint64 `json:"puts"`
	Deletes        uint64 `json:"deletes"`
	Loads          uint64 `json:"loads"`
	Spills         uint64 `json:"spills"`
	Compactions    uint64 `json:"compactions"`
	Evictions      uint64 `json:"evictions"`
	BloomNegatives uint64 `json:"bloom_negatives"`

	RecoveredEntries    int   `json:"recovered_entries"`
	WALDroppedBytes     int64 `json:"wal_dropped_bytes"`
	QuarantinedSegments int   `json:"quarantined_segments"`
}

// Store is a durable, crash-safe key/value tier: a WAL-backed memtable
// in front of immutable segments. All methods are safe for concurrent
// use. See the package comment for the design.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	mem     map[string][]byte
	memSum  map[string][sha256.Size]byte
	memTomb map[string]bool
	memB    int64
	wal     *walWriter
	segs    []*segment // age order: oldest first
	nextSeq uint64

	access map[string]uint64 // logical last-access clock (not persisted)
	clock  uint64

	// owned is the cluster ownership hint (nil = everything owned):
	// disk-cap eviction removes entries this node does not own before
	// any owned entry, regardless of recency.
	owned func(id string) bool

	st     Stats
	rec    Recovery
	closed bool
}

const walFile = "wal.log"

func segName(seq uint64, gen uint32) string {
	return fmt.Sprintf("seg-%06d-%06d.sst", seq, gen)
}

func parseSegName(base string) (seq uint64, gen uint32, ok bool) {
	var s, g uint64
	if n, err := fmt.Sscanf(base, "seg-%d-%d.sst", &s, &g); n != 2 || err != nil {
		return 0, 0, false
	}
	if !strings.HasSuffix(base, ".sst") {
		return 0, 0, false
	}
	return s, uint32(g), true
}

// Open attaches a store to dir, creating it if needed, and recovers:
// interrupted compactions are rolled forward or discarded, stray temp
// files removed, valid segments reattached (corrupt ones quarantined),
// and the WAL replayed idempotently into a fresh memtable with any torn
// tail truncated. The returned Recovery reports what was found.
func Open(dir string, opts Options) (*Store, Recovery, error) {
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = 64 << 20
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		mem:     map[string][]byte{},
		memSum:  map[string][sha256.Size]byte{},
		memTomb: map[string]bool{},
		access:  map[string]uint64{},
	}
	if err := s.recoverCompaction(); err != nil {
		return nil, Recovery{}, err
	}
	if err := s.openSegments(); err != nil {
		return nil, Recovery{}, err
	}
	if err := s.openWAL(); err != nil {
		return nil, Recovery{}, err
	}
	s.rec.Entries = len(s.liveLocked())
	s.rec.Segments = len(s.segs)
	s.st.RecoveredEntries = s.rec.Entries
	s.st.WALDroppedBytes = s.rec.WALDroppedBytes
	s.st.QuarantinedSegments = s.rec.Quarantined
	return s, s.rec, nil
}

// recoverCompaction completes or discards an interrupted compaction.
// The commit file is the decision point: once it is durable the inputs
// are logically dead, so recovery rolls the merge forward (rename the
// pending output into place, delete the inputs); without it, any
// pending/tmp outputs are leftovers of a merge that never committed and
// are discarded. This two-phase protocol is what lets compaction drop
// tombstones without a crash resurrecting masked values.
func (s *Store) recoverCompaction() error {
	commitPath := filepath.Join(s.dir, "compact.commit")
	blob, err := os.ReadFile(commitPath)
	switch {
	case err == nil:
		lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "v1 ") {
			// Unrecognized commit file: fail loudly rather than guess at
			// which files are dead.
			return fmt.Errorf("store: malformed compaction commit file %s", commitPath)
		}
		final := strings.TrimPrefix(lines[0], "v1 ")
		if final != "-" {
			finalPath := filepath.Join(s.dir, final)
			pendPath := finalPath + ".pending"
			if _, err := os.Stat(pendPath); err == nil {
				if err := os.Rename(pendPath, finalPath); err != nil {
					return err
				}
				if err := syncDir(finalPath); err != nil {
					return err
				}
			}
		}
		for _, in := range lines[1:] {
			if in == "" {
				continue
			}
			if err := os.Remove(filepath.Join(s.dir, in)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		if err := os.Remove(commitPath); err != nil {
			return err
		}
	case !os.IsNotExist(err):
		return err
	}
	// Any remaining pending/tmp file belongs to a merge or spill that
	// never committed.
	stray, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return err
	}
	pend, err := filepath.Glob(filepath.Join(s.dir, "*.pending"))
	if err != nil {
		return err
	}
	for _, p := range append(stray, pend...) {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// openSegments attaches every valid segment file in age order,
// quarantining corrupt ones (renamed to *.corrupt so they stop matching
// the segment glob but remain for forensics).
func (s *Store) openSegments() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.sst"))
	if err != nil {
		return err
	}
	type segFile struct {
		path string
		seq  uint64
		gen  uint32
	}
	var files []segFile
	for _, p := range names {
		seq, gen, ok := parseSegName(filepath.Base(p))
		if !ok {
			continue
		}
		files = append(files, segFile{path: p, seq: seq, gen: gen})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].seq != files[j].seq {
			return files[i].seq < files[j].seq
		}
		return files[i].gen < files[j].gen
	})
	for i, f := range files {
		// Same-seq duplicates cannot survive a completed recovery; be
		// defensive anyway and keep only the newest generation.
		if i+1 < len(files) && files[i+1].seq == f.seq {
			if err := quarantine(f.path); err != nil {
				return err
			}
			s.rec.Quarantined++
			continue
		}
		seg, err := openSegment(f.path, f.seq)
		if err != nil {
			if qerr := quarantine(f.path); qerr != nil {
				return qerr
			}
			s.rec.Quarantined++
			continue
		}
		s.segs = append(s.segs, seg)
		if f.seq >= s.nextSeq {
			s.nextSeq = f.seq + 1
		}
	}
	return nil
}

func quarantine(path string) error {
	return os.Rename(path, path+".corrupt")
}

// openWAL replays the log into the memtable, truncates any torn tail,
// and positions the writer at the intact end.
func (s *Store) openWAL() error {
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	good, dropped, err := replayWAL(f, func(op walOp) {
		s.rec.WALRecords++
		if op.del {
			s.applyDeleteLocked(op.id)
			return
		}
		s.applyPutLocked(op.id, op.val, op.digest)
	})
	if err != nil {
		_ = f.Close() // abandoning recovery; the replay error wins
		return err
	}
	s.rec.WALDroppedBytes = dropped
	if dropped > 0 {
		if err := f.Truncate(good); err != nil {
			_ = f.Close() // abandoning recovery; the truncate error wins
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // abandoning recovery; the sync error wins
			return err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		_ = f.Close() // abandoning recovery; the seek error wins
		return err
	}
	s.wal = &walWriter{f: f, off: good}
	// A replayed memtable over the threshold spills immediately so boot
	// memory stays bounded.
	if s.memB > s.opts.MemtableBytes {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// applyPutLocked installs a value in the memtable (no WAL write — used
// by replay and by Put after its WAL append).
func (s *Store) applyPutLocked(id string, val []byte, sum [sha256.Size]byte) {
	if old, ok := s.mem[id]; ok {
		s.memB -= int64(len(old))
	}
	s.mem[id] = val
	s.memSum[id] = sum
	delete(s.memTomb, id)
	s.memB += int64(len(val))
	s.clock++
	s.access[id] = s.clock
}

func (s *Store) applyDeleteLocked(id string) {
	if old, ok := s.mem[id]; ok {
		s.memB -= int64(len(old))
		delete(s.mem, id)
		delete(s.memSum, id)
	}
	s.memTomb[id] = true
	delete(s.access, id)
}

// Put makes (id, val) durable: the pair is WAL-appended in CRC-framed
// chunks and fsync'd before Put returns, so a crash at any later point
// preserves it. Re-putting an identical value (the content-addressed
// steady state) is a no-op that only refreshes the access clock.
func (s *Store) Put(id string, val []byte) error {
	if len(id) == 0 || len(id) > walMaxIDLen {
		return fmt.Errorf("store: key length %d out of range", len(id))
	}
	if len(val) == 0 {
		return fmt.Errorf("store: empty value")
	}
	sum := sha256.Sum256(val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if cur, ok := s.digestLocked(id); ok && cur == sum {
		s.clock++
		s.access[id] = s.clock
		return nil
	}
	//lint:holdok disk-cap admission must be atomic with the put that needs the room; eviction may flush and compact under the lock
	if err := s.ensureRoomLocked(putCost(id, val), id); err != nil {
		return err
	}
	//lint:holdok WAL order must match memtable apply order and fsync-before-ack is the durability contract
	if err := s.wal.appendRecord(walPut, id, val); err != nil {
		return err
	}
	s.applyPutLocked(id, append([]byte(nil), val...), sum)
	s.st.Puts++
	if s.memB > s.opts.MemtableBytes {
		//lint:holdok the spilled segment must be durable before the WAL truncates; the store is the cold session tier, off the inference hot path
		if err := s.flushLocked(); err != nil {
			return err
		}
		//lint:holdok tiered compaction runs at the spill point by design; segment IO under the lock is the cold-tier trade
		return s.maybeCompactLocked()
	}
	return nil
}

// putCost approximates the WAL footprint of one put record.
func putCost(id string, val []byte) int64 {
	chunks := (int64(len(val)) + walChunkSize - 1) / walChunkSize
	return int64(walHdrLen) + int64(len(id)) + 4 + int64(len(val)) + 4*chunks + sha256.Size
}

// Delete tombstones id. The tombstone is WAL-durable immediately and
// masks every older copy until a compaction that includes the oldest
// segment drops both for good. Deleting an absent key is a no-op.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.digestLocked(id); !ok {
		return nil
	}
	//lint:holdok WAL order must match memtable apply order and fsync-before-ack is the durability contract
	if err := s.wal.appendRecord(walDelete, id, nil); err != nil {
		return err
	}
	s.applyDeleteLocked(id)
	s.st.Deletes++
	return nil
}

// digestLocked resolves id to its current value digest, newest tier
// first. ok is false for absent or tombstoned keys.
func (s *Store) digestLocked(id string) ([sha256.Size]byte, bool) {
	if sum, ok := s.memSum[id]; ok {
		return sum, true
	}
	if s.memTomb[id] {
		return [sha256.Size]byte{}, false
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		if !seg.bloom.MayContain(id) {
			s.st.BloomNegatives++
			continue
		}
		if ei, ok := seg.find(id); ok {
			if seg.metas[ei].tomb {
				return [sha256.Size]byte{}, false
			}
			return seg.metas[ei].digest, true
		}
	}
	return [sha256.Size]byte{}, false
}

// Contains reports whether id is live, answering registry misses
// without touching any segment's data region (memtable map hit, then
// per-segment bloom filters and in-memory indexes only).
func (s *Store) Contains(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.digestLocked(id)
	return ok
}

// Get returns a copy of id's value (tests and small entries; the
// serving path uses Load to stream without materializing).
func (s *Store) Get(id string) ([]byte, error) {
	b, err := s.Load(id)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	val := make([]byte, b.Size())
	if _, err := readFullAt(b, val, 0); err != nil {
		return nil, err
	}
	if sum := sha256.Sum256(val); sum != b.Digest() {
		return nil, fmt.Errorf("store: entry %q digest mismatch", id)
	}
	return val, nil
}

// Load opens id's current value for random-access streaming. Segment
// hits get their own file descriptor, so the blob stays readable even
// if a concurrent compaction deletes the segment file. Callers should
// verify integrity (Blob.Verify, or an incremental digest of all bytes
// read) before trusting the content, and must Close the blob.
func (s *Store) Load(id string) (*Blob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	s.clock++
	if val, ok := s.mem[id]; ok {
		s.access[id] = s.clock
		s.st.Loads++
		return newMemBlob(val, s.memSum[id]), nil
	}
	if s.memTomb[id] {
		return nil, ErrNotFound
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		if !seg.bloom.MayContain(id) {
			s.st.BloomNegatives++
			continue
		}
		ei, ok := seg.find(id)
		if !ok {
			continue
		}
		if seg.metas[ei].tomb {
			return nil, ErrNotFound
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		s.access[id] = s.clock
		s.st.Loads++
		m := &seg.metas[ei]
		return newFileBlob(f, m.off, m.vlen, m.digest), nil
	}
	return nil, ErrNotFound
}

// liveLocked materializes the live key set (segments oldest→newest,
// then the memtable, tombstones masking as they go).
func (s *Store) liveLocked() map[string]bool {
	live := map[string]bool{}
	for _, seg := range s.segs {
		for i, id := range seg.ids {
			if seg.metas[i].tomb {
				delete(live, id)
			} else {
				live[id] = true
			}
		}
	}
	for id := range s.mem {
		live[id] = true
	}
	for id := range s.memTomb {
		delete(live, id)
	}
	return live
}

// Keys returns the sorted live key set.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.liveLocked()
	out := make([]string, 0, len(live))
	for id := range live {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the live key count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.liveLocked())
}

// Flush spills the memtable to a fresh segment and truncates the WAL.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	//lint:holdok Flush is an explicit maintenance entry point; callers opt into the stall
	if err := s.flushLocked(); err != nil {
		return err
	}
	//lint:holdok explicit-flush compaction; callers opt into the stall
	return s.maybeCompactLocked()
}

func (s *Store) flushLocked() error {
	if len(s.mem) == 0 && len(s.memTomb) == 0 {
		return nil
	}
	entries := make([]segEntry, 0, len(s.mem)+len(s.memTomb))
	for id, val := range s.mem {
		entries = append(entries, segEntry{id: id, val: val, digest: s.memSum[id]})
	}
	for id := range s.memTomb {
		entries = append(entries, segEntry{id: id, tomb: true})
	}
	seq := s.nextSeq
	path := filepath.Join(s.dir, segName(seq, 0))
	if _, err := writeSegment(path, entries); err != nil {
		return err
	}
	seg, err := openSegment(path, seq)
	if err != nil {
		return err
	}
	s.nextSeq++
	s.segs = append(s.segs, seg)
	s.mem = map[string][]byte{}
	s.memSum = map[string][sha256.Size]byte{}
	s.memTomb = map[string]bool{}
	s.memB = 0
	s.st.Spills++
	// The segment is durable; the WAL no longer needs to cover it. A
	// crash between the rename above and this truncate just replays puts
	// that the segment already holds — replay is idempotent and the next
	// compaction dedups the copies.
	if err := s.wal.f.Truncate(0); err != nil {
		return err
	}
	if err := s.wal.f.Sync(); err != nil {
		return err
	}
	if _, err := s.wal.f.Seek(0, 0); err != nil {
		return err
	}
	s.wal.off = 0
	return nil
}

// sizeTier buckets a segment by log2 of its file size, the grouping key
// of size-tiered compaction.
func sizeTier(size int64) int {
	t := 0
	for size >= 4096 {
		size >>= 1
		t++
	}
	return t
}

// maybeCompactLocked runs tiered compaction: any run of CompactAt or
// more age-adjacent segments in the same size tier is merged (adjacency
// keeps newest-wins semantics exact). Repeats until no run qualifies.
func (s *Store) maybeCompactLocked() error {
	for {
		lo, hi, found := -1, -1, false
		run := 1
		for i := 1; i <= len(s.segs); i++ {
			if i < len(s.segs) && sizeTier(s.segs[i].size) == sizeTier(s.segs[i-1].size) {
				run++
				continue
			}
			if run >= s.opts.CompactAt {
				lo, hi, found = i-run, i-1, true
				break
			}
			run = 1
		}
		if !found {
			return nil
		}
		if err := s.compactRunLocked(lo, hi); err != nil {
			return err
		}
	}
}

// Compact merges everything — memtable flushed first, then all segments
// folded into one with tombstones dropped.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	//lint:holdok Compact is an explicit maintenance entry point; callers opt into the stall
	return s.compactAllLocked()
}

func (s *Store) compactAllLocked() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	if len(s.segs) == 0 {
		return nil
	}
	return s.compactRunLocked(0, len(s.segs)-1)
}

// compactRunLocked merges segments [lo, hi] (age order, inclusive) into
// one, newest value per key winning. Tombstones are dropped only when
// the run includes the oldest segment — otherwise they must survive to
// keep masking older copies. The merge commits via a two-phase
// protocol: the merged output is written to a .pending path, a commit
// file naming the output and the dead inputs is fsync'd (the point of
// no return), then the output is renamed live and the inputs deleted.
// Open replays whichever half a crash interrupted.
func (s *Store) compactRunLocked(lo, hi int) error {
	dropTombs := lo == 0
	type pick struct {
		seg *segment
		ei  int
	}
	newest := map[string]pick{}
	var order []string
	for i := hi; i >= lo; i-- {
		seg := s.segs[i]
		for ei, id := range seg.ids {
			if _, ok := newest[id]; ok {
				continue
			}
			newest[id] = pick{seg: seg, ei: ei}
			order = append(order, id)
		}
	}
	var entries []segEntry
	for _, id := range order {
		p := newest[id]
		m := &p.seg.metas[p.ei]
		if m.tomb {
			if !dropTombs {
				entries = append(entries, segEntry{id: id, tomb: true})
			}
			continue
		}
		val, err := p.seg.load(p.ei)
		if err != nil {
			return err
		}
		entries = append(entries, segEntry{id: id, val: val, digest: m.digest})
	}

	outSeq, outGen := s.segs[hi].seq, uint32(0)
	if _, gen, ok := parseSegName(filepath.Base(s.segs[hi].path)); ok {
		outGen = gen + 1
	}
	final := segName(outSeq, outGen)
	finalPath := filepath.Join(s.dir, final)
	commitFinal := final
	if len(entries) == 0 {
		commitFinal = "-"
	} else {
		if _, err := writeSegment(finalPath+".pending", entries); err != nil {
			return err
		}
	}
	var commit strings.Builder
	_, _ = commit.WriteString("v1 " + commitFinal + "\n") // strings.Builder never errors
	for i := lo; i <= hi; i++ {
		_, _ = commit.WriteString(filepath.Base(s.segs[i].path) + "\n")
	}
	commitPath := filepath.Join(s.dir, "compact.commit")
	if err := writeFileSync(commitPath, []byte(commit.String())); err != nil {
		return err
	}
	// Point of no return: the inputs are logically dead.
	var merged *segment
	if len(entries) > 0 {
		if err := os.Rename(finalPath+".pending", finalPath); err != nil {
			return err
		}
		if err := syncDir(finalPath); err != nil {
			return err
		}
		var err error
		merged, err = openSegment(finalPath, outSeq)
		if err != nil {
			return err
		}
	}
	for i := lo; i <= hi; i++ {
		if err := os.Remove(s.segs[i].path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if err := os.Remove(commitPath); err != nil {
		return err
	}
	rest := append([]*segment{}, s.segs[:lo]...)
	if merged != nil {
		rest = append(rest, merged)
	}
	s.segs = append(rest, s.segs[hi+1:]...)
	s.st.Compactions++
	return nil
}

// writeFileSync writes path atomically (tmp + rename) and fsyncs both
// the file and its directory.
func writeFileSync(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		_ = f.Close() // abandoning the temp file; the write error wins
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // abandoning the temp file; the sync error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(path)
}

// diskBytesLocked is the store's on-disk footprint: segment files plus
// the WAL.
func (s *Store) diskBytesLocked() int64 {
	total := s.wal.off
	for _, seg := range s.segs {
		total += seg.size
	}
	return total
}

// ensureRoomLocked makes need bytes of WAL headroom available under the
// disk cap: compact first (reclaims dead versions and dropped
// tombstones), then evict the least-recently-accessed live entries
// (skipping the incoming key) until the projected footprint fits.
func (s *Store) ensureRoomLocked(need int64, skip string) error {
	cap := s.opts.DiskCapBytes
	if cap <= 0 || s.diskBytesLocked()+need <= cap {
		return nil
	}
	if err := s.compactAllLocked(); err != nil {
		return err
	}
	for s.diskBytesLocked()+need > cap {
		victim, ok := s.coldestLocked(skip)
		if !ok {
			return ErrDiskCap
		}
		if err := s.wal.appendRecord(walDelete, victim, nil); err != nil {
			return err
		}
		s.applyDeleteLocked(victim)
		s.st.Evictions++
		if err := s.compactAllLocked(); err != nil {
			return err
		}
	}
	return nil
}

// SetEvictionHint installs the cluster ownership predicate: entries
// for which owned returns false are evicted under disk pressure before
// any owned entry, regardless of recency. nil clears the hint. The
// predicate must be safe for concurrent use and must not call back
// into the store.
func (s *Store) SetEvictionHint(owned func(id string) bool) {
	s.mu.Lock()
	s.owned = owned
	s.mu.Unlock()
}

// coldestLocked picks the eviction victim: unowned entries (per the
// eviction hint) before owned ones, then the oldest access clock
// (never-accessed entries first, id order breaking ties).
func (s *Store) coldestLocked(skip string) (string, bool) {
	var victim string
	var victimClock uint64
	victimOwned := true
	found := false
	live := s.liveLocked()
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if id == skip {
			continue
		}
		c := s.access[id]
		idOwned := s.owned == nil || s.owned(id)
		switch {
		case !found,
			victimOwned && !idOwned,
			victimOwned == idOwned && c < victimClock:
			victim, victimClock, victimOwned, found = id, c, idOwned, true
		}
	}
	return victim, found
}

// Stats returns a snapshot of occupancy and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Entries = len(s.liveLocked())
	st.MemBytes = s.memB
	st.WALBytes = s.wal.off
	st.DiskBytes = s.diskBytesLocked()
	st.Segments = len(s.segs)
	return st
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes the memtable (so the next Open reattaches segments
// instead of replaying the WAL) and releases the log file. The store is
// unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	//lint:holdok Close drains the memtable once at shutdown; no other caller can enter a closed store
	err := s.flushLocked()
	if cerr := s.wal.f.Close(); err == nil {
		err = cerr
	}
	return err
}
