package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestStore(t *testing.T, dir string, opts Options) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rec
}

func TestStorePutGetDelete(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), Options{})
	val := bytes.Repeat([]byte{0xAB}, 1000)
	if err := s.Put("alpha", val); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("value mismatch")
	}
	if !s.Contains("alpha") || s.Contains("beta") {
		t.Fatal("Contains wrong")
	}
	if err := s.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if s.Contains("alpha") {
		t.Fatal("deleted key still present")
	}
	if _, err := s.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	// Deleting an absent key is a no-op.
	if err := s.Delete("never"); err != nil {
		t.Fatal(err)
	}
}

// Re-putting identical content (the content-addressed steady state)
// must not grow the WAL.
func TestStoreIdempotentPut(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), Options{})
	val := bytes.Repeat([]byte{1}, 500)
	if err := s.Put("id", val); err != nil {
		t.Fatal(err)
	}
	walAfterFirst := s.Stats().WALBytes
	for i := 0; i < 5; i++ {
		if err := s.Put("id", val); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().WALBytes; got != walAfterFirst {
		t.Fatalf("duplicate puts grew WAL: %d -> %d", walAfterFirst, got)
	}
	// A different value under the same key does overwrite.
	val2 := bytes.Repeat([]byte{2}, 500)
	if err := s.Put("id", val2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("id")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val2) {
		t.Fatal("overwrite lost")
	}
}

func TestStoreReopenFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{})
	vals := map[string][]byte{}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("sess-%d", i)
		vals[id] = bytes.Repeat([]byte{byte(i)}, 200+i)
		if err := s.Put(id, vals[id]); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("sess-3")
	delete(vals, "sess-3")
	// Simulate a crash: do NOT Close (no flush), reopen and replay.
	s.mu.Lock()
	s.wal.f.Close()
	s.closed = true
	s.mu.Unlock()

	s2, rec := openTestStore(t, dir, Options{})
	if rec.Entries != len(vals) || rec.WALRecords != 11 || rec.WALDroppedBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	for id, want := range vals {
		got, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("value mismatch for %s", id)
		}
	}
	if s2.Contains("sess-3") {
		t.Fatal("tombstone lost on replay")
	}
}

// A torn WAL tail (crash mid-record) must drop exactly the torn record
// and preserve every earlier one.
func TestStoreReopenTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{})
	if err := s.Put("acked", bytes.Repeat([]byte{7}, 300)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.wal.f.Close()
	s.closed = true
	s.mu.Unlock()
	// Append garbage simulating a torn in-flight record.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	junk := append(bytes.Repeat([]byte{0xFF}, 3), []byte("torn-upload")...)
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := openTestStore(t, dir, Options{})
	if rec.WALDroppedBytes != int64(len(junk)) {
		t.Fatalf("dropped %d bytes, want %d", rec.WALDroppedBytes, len(junk))
	}
	if !s2.Contains("acked") {
		t.Fatal("acked entry lost")
	}
	if s2.Len() != 1 {
		t.Fatalf("Len=%d want 1", s2.Len())
	}
	// And the truncation must be durable: a third open sees a clean log.
	s2.Close()
	_, rec3 := openTestStore(t, dir, Options{})
	if rec3.WALDroppedBytes != 0 {
		t.Fatalf("truncation not durable: dropped %d", rec3.WALDroppedBytes)
	}
}

func TestStoreSpillAndReopenFromSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny memtable so every few puts spill to a segment.
	s, _ := openTestStore(t, dir, Options{MemtableBytes: 4096})
	vals := map[string][]byte{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("sess-%02d", i)
		val := make([]byte, 500+rng.Intn(1500))
		rng.Read(val)
		vals[id] = val
		if err := s.Put(id, val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Spills == 0 || st.Segments == 0 {
		t.Fatalf("no spills happened: %+v", st)
	}
	for id, want := range vals {
		got, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch for %s", id)
		}
	}
	s.Close()

	s2, rec := openTestStore(t, dir, Options{MemtableBytes: 4096})
	if rec.Entries != len(vals) {
		t.Fatalf("recovered %d entries, want %d", rec.Entries, len(vals))
	}
	if rec.WALRecords != 0 {
		t.Fatalf("clean close left %d WAL records", rec.WALRecords)
	}
	for id, want := range vals {
		got, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch for %s after reopen", id)
		}
	}
}

// Property: any interleaving of puts, overwrites, and deletes followed
// by compaction yields exactly the live set a model map predicts.
func TestStoreCompactionPreservesLiveSet(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := openTestStore(t, dir, Options{MemtableBytes: 2048, CompactAt: 3})
			rng := rand.New(rand.NewSource(seed))
			model := map[string][]byte{}
			for step := 0; step < 200; step++ {
				id := fmt.Sprintf("k%02d", rng.Intn(25))
				switch rng.Intn(4) {
				case 0:
					if err := s.Delete(id); err != nil {
						t.Fatal(err)
					}
					delete(model, id)
				default:
					val := make([]byte, 100+rng.Intn(400))
					rng.Read(val)
					if err := s.Put(id, val); err != nil {
						t.Fatal(err)
					}
					model[id] = val
				}
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Segments > 1 {
				t.Fatalf("full compaction left %d segments", st.Segments)
			}
			checkAgainstModel(t, s, model)
			// Tombstones must actually be gone after a full compaction.
			if len(s.segs) == 1 && s.segs[0].live != len(s.segs[0].ids) {
				t.Fatalf("full compaction kept tombstones: %d live of %d", s.segs[0].live, len(s.segs[0].ids))
			}
			// And the same live set must survive a reopen.
			s.Close()
			s2, _ := openTestStore(t, dir, Options{MemtableBytes: 2048, CompactAt: 3})
			checkAgainstModel(t, s2, model)
		})
	}
}

func checkAgainstModel(t *testing.T, s *Store, model map[string][]byte) {
	t.Helper()
	keys := s.Keys()
	if len(keys) != len(model) {
		t.Fatalf("live set size %d, model %d", len(keys), len(model))
	}
	for _, id := range keys {
		want, ok := model[id]
		if !ok {
			t.Fatalf("store has %s, model does not", id)
		}
		got, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("value mismatch for %s", id)
		}
	}
}

// An interrupted compaction (crash right after the commit file became
// durable, inputs still on disk) must roll forward on open without
// resurrecting tombstoned values.
func TestStoreCompactionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{})
	if err := s.Put("keep", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", bytes.Repeat([]byte{2}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Two segments: [puts], [tombstone]. Stage the crash window by hand:
	// merged output pending + commit file present, inputs not yet deleted.
	s.mu.Lock()
	if len(s.segs) != 2 {
		s.mu.Unlock()
		t.Fatalf("want 2 segments, have %d", len(s.segs))
	}
	in0, in1 := s.segs[0], s.segs[1]
	merged := []segEntry{{id: "keep", val: bytes.Repeat([]byte{1}, 100), digest: sha256.Sum256(bytes.Repeat([]byte{1}, 100))}}
	final := segName(in1.seq, 1)
	if _, err := writeSegment(filepath.Join(dir, final+".pending"), merged); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	commit := "v1 " + final + "\n" + filepath.Base(in0.path) + "\n" + filepath.Base(in1.path) + "\n"
	if err := writeFileSync(filepath.Join(dir, "compact.commit"), []byte(commit)); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.wal.f.Close()
	s.closed = true
	s.mu.Unlock()

	s2, rec := openTestStore(t, dir, Options{})
	if rec.Quarantined != 0 {
		t.Fatalf("recovery quarantined %d segments", rec.Quarantined)
	}
	if !s2.Contains("keep") {
		t.Fatal("live entry lost rolling compaction forward")
	}
	if s2.Contains("gone") {
		t.Fatal("tombstoned value resurrected by interrupted compaction")
	}
	if _, err := os.Stat(filepath.Join(dir, "compact.commit")); !os.IsNotExist(err) {
		t.Fatal("commit file not cleaned up")
	}
}

// A crash before the commit file exists must discard the pending output
// and keep serving from the inputs.
func TestStoreCompactionAbortedDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{})
	if err := s.Put("a", bytes.Repeat([]byte{3}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Pending merge output with no commit file: never committed.
	if _, err := writeSegment(filepath.Join(dir, segName(99, 1)+".pending"), []segEntry{{id: "ghost", val: []byte{9}, digest: sha256.Sum256([]byte{9})}}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.wal.f.Close()
	s.closed = true
	s.mu.Unlock()

	s2, _ := openTestStore(t, dir, Options{})
	if s2.Contains("ghost") {
		t.Fatal("uncommitted merge output became visible")
	}
	if !s2.Contains("a") {
		t.Fatal("input entry lost")
	}
	pend, _ := filepath.Glob(filepath.Join(dir, "*.pending"))
	if len(pend) != 0 {
		t.Fatalf("pending files survived recovery: %v", pend)
	}
}

// A corrupt segment file is quarantined, not served from and not fatal.
func TestStoreQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{})
	if err := s.Put("ok", bytes.Repeat([]byte{5}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.sst"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF // break the footer magic
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openTestStore(t, dir, Options{})
	if rec.Quarantined != 1 {
		t.Fatalf("quarantined=%d want 1", rec.Quarantined)
	}
	if s2.Contains("ok") {
		t.Fatal("entry served from corrupt segment")
	}
	qs, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(qs) != 1 {
		t.Fatalf("corrupt file not kept for forensics: %v", qs)
	}
}

// With a disk cap, cold entries are evicted (oldest access first) to
// make room, and the incoming entry always survives.
func TestStoreDiskCapEvictsCold(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, Options{MemtableBytes: 1, DiskCapBytes: 64 << 10})
	val := bytes.Repeat([]byte{1}, 8<<10)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("cold-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch cold-0 so it is the hottest.
	if _, err := s.Get("cold-0"); err != nil {
		t.Fatal(err)
	}
	// Push enough new entries to exceed the cap.
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("new-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under cap pressure: %+v", st)
	}
	if st.DiskBytes > 64<<10 {
		t.Fatalf("disk bytes %d exceed cap", st.DiskBytes)
	}
	// The most recent put always survives.
	if !s.Contains("new-3") {
		t.Fatal("incoming entry evicted")
	}
	// A single value larger than the cap is rejected, not looped on.
	if err := s.Put("huge", bytes.Repeat([]byte{2}, 80<<10)); !errors.Is(err, ErrDiskCap) {
		t.Fatalf("oversized put: %v", err)
	}
}

func TestStoreBlobVerifyAndStream(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), Options{})
	val := bytes.Repeat([]byte{0xC3}, 100_000)
	if err := s.Put("big", val); err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		b, err := s.Load("big")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		defer b.Close()
		if b.Size() != int64(len(val)) {
			t.Fatalf("%s: size %d", label, b.Size())
		}
		if err := b.Verify(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		mid := make([]byte, 1000)
		if _, err := readFullAt(b, mid, 50_000); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !bytes.Equal(mid, val[50_000:51_000]) {
			t.Fatalf("%s: mid-read mismatch", label)
		}
	}
	check("memtable")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	check("segment")
	// A blob opened before compaction keeps reading after the segment
	// file is replaced (it holds its own descriptor).
	b, err := s.Load("big")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := s.Put("other", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(); err != nil {
		t.Fatalf("blob unreadable after compaction: %v", err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), Options{MemtableBytes: 8 << 10, CompactAt: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d-k%d", w, rng.Intn(10))
				switch rng.Intn(5) {
				case 0:
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if b, err := s.Load(id); err == nil {
						if err := b.Verify(); err != nil {
							t.Error(err)
						}
						b.Close()
					} else if !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
				default:
					val := make([]byte, 100+rng.Intn(2000))
					rng.Read(val)
					if err := s.Put(id, val); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
