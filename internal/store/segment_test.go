package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func mkEntries(n int, seed int64) []segEntry {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]segEntry, n)
	for i := range entries {
		val := make([]byte, 16+rng.Intn(256))
		rng.Read(val)
		entries[i] = segEntry{
			id:     fmt.Sprintf("key-%04d", i),
			val:    val,
			digest: sha256.Sum256(val),
		}
	}
	return entries
}

func TestSegmentRoundTrip(t *testing.T) {
	entries := mkEntries(100, 7)
	entries[13] = segEntry{id: entries[13].id, tomb: true}
	path := filepath.Join(t.TempDir(), segName(1, 0))
	if _, err := writeSegment(path, entries); err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.live != 99 {
		t.Fatalf("live=%d want 99", seg.live)
	}
	for i, e := range entries {
		ei, ok := seg.find(e.id)
		if !ok {
			t.Fatalf("entry %d (%s) not found", i, e.id)
		}
		if seg.metas[ei].tomb != e.tomb {
			t.Fatalf("entry %s tombstone mismatch", e.id)
		}
		if e.tomb {
			continue
		}
		got, err := seg.load(ei)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, e.val) {
			t.Fatalf("entry %s value mismatch", e.id)
		}
	}
	if _, ok := seg.find("absent-key"); ok {
		t.Fatal("found absent key")
	}
}

func TestSegmentRejectsDuplicates(t *testing.T) {
	entries := mkEntries(2, 1)
	entries[1].id = entries[0].id
	path := filepath.Join(t.TempDir(), segName(1, 0))
	if _, err := writeSegment(path, entries); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

// Every single-byte corruption of a segment file must either fail open
// validation or fail the per-entry digest check on load — corrupt bytes
// are never served as valid values.
func TestSegmentCorruptionDetected(t *testing.T) {
	entries := mkEntries(8, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, segName(1, 0))
	if _, err := writeSegment(path, entries); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stride through the file rather than every byte to keep it quick.
	for pos := 0; pos < len(full); pos += 7 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x10
		mpath := filepath.Join(dir, "mut.sst")
		if err := os.WriteFile(mpath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		seg, err := openSegment(mpath, 1)
		if err != nil {
			continue // structural corruption caught at open
		}
		// Open survived (flip landed in a value): every load must either
		// error or return bytes matching the recorded digest.
		for ei := range seg.ids {
			if seg.metas[ei].tomb {
				continue
			}
			val, err := seg.load(ei)
			if err != nil {
				continue
			}
			if sha256.Sum256(val) != seg.metas[ei].digest {
				t.Fatalf("flip at %d: load returned bytes that fail digest", pos)
			}
		}
	}
}

func TestSegmentTruncationDetected(t *testing.T) {
	entries := mkEntries(8, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, segName(1, 0))
	if _, err := writeSegment(path, entries); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, segHdrLen, len(full) / 2, len(full) - 1} {
		mpath := filepath.Join(dir, "cut.sst")
		if err := os.WriteFile(mpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := openSegment(mpath, 1); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seq uint64
		gen uint32
	}{{0, 0}, {42, 0}, {42, 17}, {1234567, 3}} {
		seq, gen, ok := parseSegName(segName(tc.seq, tc.gen))
		if !ok || seq != tc.seq || gen != tc.gen {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d,%v)", tc.seq, tc.gen, seq, gen, ok)
		}
	}
	for _, bad := range []string{"wal.log", "seg-1.sst", "seg-1-2.sst.corrupt", "seg--1-2.sst"} {
		if _, _, ok := parseSegName(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}
