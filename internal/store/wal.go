package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log. Every mutation (Put, Delete) is appended as one
// record and fsync'd before the call returns, so an acked upload
// survives a crash at any later instant. Values are written in bounded
// chunks, each followed by its CRC-32C, and the record closes with the
// SHA-256 digest of the whole value — a torn write (power cut mid
// record) or a bit-flipped tail fails one of those checks on replay and
// the log is truncated back to the last intact record. Replay is
// idempotent: records are keyed, re-applying a prefix that was already
// spilled to a segment just recreates the same memtable state (newest
// wins on lookup, compaction dedups the segment copies later).
//
// Record layout (little-endian):
//
//	magic(u32 "AWL1") | type(u8) | idLen(u16) | valLen(u64) | id | hcrc(u32)
//	put: value chunks (≤ walChunkSize each, crc32c(u32) after every chunk) | sha256(value)[32]
//	del: nothing further
//
// hcrc is the CRC-32C of everything before it (magic through id), so a
// bit flip anywhere in the header or key is caught even though the
// chunk CRCs and digest only cover the value.
const (
	walMagic uint32 = 0x41574c31 // "AWL1"

	walPut    byte = 1
	walDelete byte = 2

	// walChunkSize bounds one CRC-framed chunk of a value: a 300 MB key
	// upload streams through the log in 1 MiB digest-verified pieces.
	walChunkSize = 1 << 20

	// walMaxIDLen bounds a record's key (session IDs are 32 hex chars;
	// the slack keeps the format generic without letting a corrupt
	// length field drive a huge allocation).
	walMaxIDLen = 512

	walHdrLen = 4 + 1 + 2 + 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends records to the open log file.
type walWriter struct {
	f   *os.File
	buf []byte // record staging, reused across appends
	off int64  // current end of the intact log
}

// appendRecord stages one full record in w.buf, writes it with a single
// Write, and fsyncs. Staging the whole record first means a crash
// mid-write can only produce a torn suffix, never interleaved records.
func (w *walWriter) appendRecord(typ byte, id string, val []byte) error {
	if len(id) == 0 || len(id) > walMaxIDLen {
		return fmt.Errorf("store: wal record id length %d out of range", len(id))
	}
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, walMagic)
	b = append(b, typ)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(id)))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(val)))
	b = append(b, id...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	switch typ {
	case walPut:
		if len(val) == 0 {
			return fmt.Errorf("store: empty value in wal put record")
		}
		for off := 0; off < len(val); off += walChunkSize {
			end := off + walChunkSize
			if end > len(val) {
				end = len(val)
			}
			chunk := val[off:end]
			b = append(b, chunk...)
			b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(chunk, castagnoli))
		}
		sum := sha256.Sum256(val)
		b = append(b, sum[:]...)
	case walDelete:
	default:
		return fmt.Errorf("store: unknown wal record type %d", typ)
	}
	w.buf = b
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off += int64(len(b))
	return nil
}

// walOp is one replayed record.
type walOp struct {
	del    bool
	id     string
	val    []byte
	digest [32]byte
}

// replayWAL scans the log from the start, calling apply for every
// intact record in order. It stops at the first malformed byte — bad
// magic, impossible length, short read, chunk CRC or digest mismatch —
// and reports the offset of the last intact record boundary plus how
// many bytes after it were dropped. The caller truncates the file to
// goodBytes before appending, so a torn tail can never corrupt later
// records. Applying the same log twice yields the same state: records
// carry full values (not deltas), so replay is idempotent by
// construction.
func replayWAL(f *os.File, apply func(op walOp)) (goodBytes, droppedBytes int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		op, n, rerr := readWALRecord(br, size-off)
		if rerr != nil {
			if rerr == io.EOF && n == 0 {
				return off, size - off, nil
			}
			// Malformed or torn record: everything from its start on is
			// dropped.
			return off, size - off, nil
		}
		apply(op)
		off += n
	}
}

// readWALRecord decodes one record from br, bounded by remain bytes.
// Every length field is validated against remain before any allocation,
// so a corrupt header surfaces as an error, never a panic or an
// attacker-sized make.
func readWALRecord(br *bufio.Reader, remain int64) (walOp, int64, error) {
	var op walOp
	if remain == 0 {
		return op, 0, io.EOF
	}
	var hdr [walHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return op, 0, fmt.Errorf("store: wal header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != walMagic {
		return op, 0, fmt.Errorf("store: bad wal magic %#x", m)
	}
	typ := hdr[4]
	idLen := int(binary.LittleEndian.Uint16(hdr[5:7]))
	valLen := binary.LittleEndian.Uint64(hdr[7:15])
	if idLen == 0 || idLen > walMaxIDLen {
		return op, 0, fmt.Errorf("store: wal id length %d out of range", idLen)
	}
	// Bound the value length by the bytes actually present before any
	// signed arithmetic or allocation: a corrupt 2^63-scale length field
	// must not wrap the accounting below.
	if valLen > uint64(remain) {
		return op, 0, fmt.Errorf("store: wal value length %d exceeds remaining %d bytes (torn tail)", valLen, remain)
	}
	need := int64(walHdrLen) + int64(idLen) + 4 // header + id + hcrc
	switch typ {
	case walPut:
		if valLen == 0 {
			return op, 0, fmt.Errorf("store: empty value in wal put record")
		}
		chunks := (int64(valLen) + walChunkSize - 1) / walChunkSize
		need += int64(valLen) + 4*chunks + sha256.Size
	case walDelete:
		if valLen != 0 {
			return op, 0, fmt.Errorf("store: wal delete record carries %d value bytes", valLen)
		}
	default:
		return op, 0, fmt.Errorf("store: unknown wal record type %d", typ)
	}
	if need > remain {
		return op, 0, fmt.Errorf("store: wal record needs %d bytes, %d remain (torn tail)", need, remain)
	}
	idBuf := make([]byte, idLen)
	if _, err := io.ReadFull(br, idBuf); err != nil {
		return op, 0, fmt.Errorf("store: wal id: %w", err)
	}
	op.id = string(idBuf)
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return op, 0, fmt.Errorf("store: wal header crc: %w", err)
	}
	hcrc := crc32.Checksum(hdr[:], castagnoli)
	hcrc = crc32.Update(hcrc, castagnoli, idBuf)
	if binary.LittleEndian.Uint32(crcBuf[:]) != hcrc {
		return op, 0, fmt.Errorf("store: wal header crc mismatch")
	}

	switch typ {
	case walDelete:
		op.del = true
		return op, need, nil

	default: // walPut
		val := make([]byte, valLen)
		for off := uint64(0); off < valLen; off += walChunkSize {
			end := off + walChunkSize
			if end > valLen {
				end = valLen
			}
			chunk := val[off:end]
			if _, err := io.ReadFull(br, chunk); err != nil {
				return op, 0, fmt.Errorf("store: wal chunk: %w", err)
			}
			if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
				return op, 0, fmt.Errorf("store: wal chunk crc: %w", err)
			}
			if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.Checksum(chunk, castagnoli) {
				return op, 0, fmt.Errorf("store: wal chunk crc mismatch")
			}
		}
		var want [sha256.Size]byte
		if _, err := io.ReadFull(br, want[:]); err != nil {
			return op, 0, fmt.Errorf("store: wal digest: %w", err)
		}
		sum := sha256.Sum256(val)
		if !bytes.Equal(sum[:], want[:]) {
			return op, 0, fmt.Errorf("store: wal record digest mismatch")
		}
		op.val, op.digest = val, sum
		return op, need, nil
	}
}
