package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// rpc posts one JSON-RPC request body and decodes the response.
func rpc(t *testing.T, url, body string) (result json.RawMessage, rerr *rpcError) {
	t.Helper()
	resp, err := http.Post(url+"/rpc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		JSONRPC string          `json:"jsonrpc"`
		Result  json.RawMessage `json:"result"`
		Error   *rpcError       `json:"error"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("undecodable response %q: %v", raw, err)
	}
	if out.JSONRPC != "2.0" {
		t.Fatalf("response jsonrpc %q, want 2.0", out.JSONRPC)
	}
	return out.Result, out.Error
}

// TestControlMembershipRPC drives join/status/drain/leave through the
// JSON-RPC surface end to end.
func TestControlMembershipRPC(t *testing.T) {
	m := NewMembership(8)
	ctl := NewControl(m, nil)
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":1,"method":"cluster.join","params":{"name":"a","addr":"127.0.0.1:7700"}}`); rerr != nil {
		t.Fatalf("join: %v", rerr)
	}
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":2,"method":"cluster.join","params":{"name":"b","addr":"127.0.0.1:7710"}}`); rerr != nil {
		t.Fatalf("join b: %v", rerr)
	}

	res, rerr := rpc(t, srv.URL, `{"jsonrpc":"2.0","id":3,"method":"cluster.status"}`)
	if rerr != nil {
		t.Fatalf("status: %v", rerr)
	}
	var doc MembershipDoc
	if err := json.Unmarshal(res, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 2 || doc.Epoch != 2 {
		t.Fatalf("status %+v, want 2 nodes at epoch 2", doc)
	}

	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":4,"method":"cluster.drain","params":{"name":"a"}}`); rerr != nil {
		t.Fatalf("drain: %v", rerr)
	}
	if n, _ := m.Node("a"); n.State != NodeDraining {
		t.Fatalf("node a state %v after drain RPC", n.State)
	}
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":5,"method":"cluster.leave","params":{"name":"a"}}`); rerr != nil {
		t.Fatalf("leave: %v", rerr)
	}
	if _, ok := m.Node("a"); ok {
		t.Fatal("node a still present after leave RPC")
	}

	// Error surfaces: unknown node, unknown method, bad params, parse error.
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":6,"method":"cluster.drain","params":{"name":"ghost"}}`); rerr == nil || rerr.Code != rpcInvalidParams {
		t.Fatalf("drain ghost: %v, want invalid params", rerr)
	}
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":7,"method":"cluster.destroy"}`); rerr == nil || rerr.Code != rpcMethodNotFound {
		t.Fatalf("unknown method: %v, want method-not-found", rerr)
	}
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":8,"method":"cluster.join","params":{"name":""}}`); rerr == nil || rerr.Code != rpcInvalidParams {
		t.Fatalf("empty join: %v, want invalid params", rerr)
	}
	if _, rerr := rpc(t, srv.URL, `{"jsonrpc":"2.0",`); rerr == nil || rerr.Code != rpcParseError {
		t.Fatalf("truncated JSON: %v, want parse error", rerr)
	}
	if _, rerr := rpc(t, srv.URL, `{"id":9,"method":"cluster.status"}`); rerr == nil || rerr.Code != rpcInvalidRequest {
		t.Fatalf("missing jsonrpc version: %v, want invalid request", rerr)
	}

	// GET on the RPC endpoint is refused.
	resp, err := http.Get(srv.URL + "/rpc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rpc: %s, want 405", resp.Status)
	}
}

// TestControlOwnershipPush: a membership change POSTs the snapshot to
// every node admin endpoint; nodes without one are skipped.
func TestControlOwnershipPush(t *testing.T) {
	var pushes atomic.Int64
	var last atomic.Value // MembershipDoc
	admin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" || r.Method != http.MethodPost {
			http.Error(w, "wrong push target", http.StatusBadRequest)
			return
		}
		var doc MembershipDoc
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pushes.Add(1)
		last.Store(doc)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer admin.Close()
	adminAddr := strings.TrimPrefix(admin.URL, "http://")

	m := NewMembership(8)
	ctl := NewControl(m, nil)
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{
		"jsonrpc": "2.0", "id": 1, "method": "cluster.join",
		"params": map[string]string{"name": "a", "addr": "127.0.0.1:7700", "admin": adminAddr},
	})
	res, rerr := rpc(t, srv.URL, string(bytes.TrimSpace(body)))
	if rerr != nil {
		t.Fatalf("join: %v", rerr)
	}
	var ch changeResult
	if err := json.Unmarshal(res, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Pushed != 1 || len(ch.PushErrors) != 0 {
		t.Fatalf("change result %+v, want 1 clean push", ch)
	}
	if pushes.Load() != 1 {
		t.Fatalf("admin endpoint saw %d pushes, want 1", pushes.Load())
	}
	doc := last.Load().(MembershipDoc)
	if len(doc.Nodes) != 1 || doc.Nodes[0].Name != "a" || doc.Epoch != 1 {
		t.Fatalf("pushed doc %+v", doc)
	}

	// join a second node without an admin address: one push again.
	if _, rerr := rpc(t, srv.URL,
		`{"jsonrpc":"2.0","id":2,"method":"cluster.join","params":{"name":"b","addr":"127.0.0.1:7710"}}`); rerr != nil {
		t.Fatalf("join b: %v", rerr)
	}
	if pushes.Load() != 2 {
		t.Fatalf("admin endpoint saw %d pushes, want 2", pushes.Load())
	}
	doc = last.Load().(MembershipDoc)
	if len(doc.Nodes) != 2 || doc.Epoch != 2 {
		t.Fatalf("second pushed doc %+v", doc)
	}

	// rebalance re-pushes without a membership change.
	if _, rerr := rpc(t, srv.URL, `{"jsonrpc":"2.0","id":3,"method":"cluster.rebalance"}`); rerr != nil {
		t.Fatalf("rebalance: %v", rerr)
	}
	if pushes.Load() != 3 {
		t.Fatalf("admin endpoint saw %d pushes after rebalance, want 3", pushes.Load())
	}

	// An unreachable admin endpoint reports a push error, not failure.
	admin.Close()
	res, rerr = rpc(t, srv.URL, `{"jsonrpc":"2.0","id":4,"method":"cluster.rebalance"}`)
	if rerr != nil {
		t.Fatalf("rebalance with dead admin: %v", rerr)
	}
	if err := json.Unmarshal(res, &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.PushErrors) != 1 {
		t.Fatalf("change result %+v, want one push error", ch)
	}
}

// TestControlMetricsAggregation: GET /metrics returns the cluster
// document; unreachable nodes appear with errors instead of failing it.
func TestControlMetricsAggregation(t *testing.T) {
	m := NewMembership(8)
	if err := m.Join("dead", "127.0.0.1:1", ""); err != nil {
		t.Fatal(err)
	}
	ctl := NewControl(m, nil)
	ctl.StatsTimeout = 500 * time.Millisecond
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap ClusterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Cluster.Nodes) != 1 {
		t.Fatalf("%d node rows, want 1", len(snap.Cluster.Nodes))
	}
	row := snap.Cluster.Nodes[0]
	if row.Reachable || row.Error == "" {
		t.Fatalf("dead node row %+v, want unreachable with error", row)
	}
	if snap.Cluster.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", snap.Cluster.Epoch)
	}
}
