package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"athena/internal/serve"
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Members is the cluster membership (required).
	Members *Membership

	// MaxFrame bounds one frame payload in both directions
	// (0 = serve.DefaultMaxFrame).
	MaxFrame uint32

	// DialTimeout bounds one backend TCP connect (0 = 10 s).
	DialTimeout time.Duration
	// CtrlTimeout bounds one backend session attach/upload round-trip —
	// a cold attach may rebuild an engine from disk (0 = 2 min).
	CtrlTimeout time.Duration
	// ReadTimeout bounds the wait for the next client frame
	// (0 = 10 min); WriteTimeout bounds one write (0 = 30 s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// MaxInflightPerBackend bounds requests outstanding on one backend
	// connection; beyond it new requests are answered with the typed
	// BUSY clients already back off on (0 = 256).
	MaxInflightPerBackend int
}

// RouterStats is the router's own counter block (it appears under
// "router" in the aggregated cluster metrics).
type RouterStats struct {
	Connections    uint64 `json:"connections"`
	SessionsRouted uint64 `json:"sessions_routed"`
	InfersRelayed  uint64 `json:"infers_relayed"`
	Redirects      uint64 `json:"redirects"`
	NeedKeys       uint64 `json:"need_keys"`
	Busy           uint64 `json:"busy"`
	BackendDials   uint64 `json:"backend_dials"`
	BackendErrors  uint64 `json:"backend_errors"`
}

// Router is the stateless ASV1 front tier: it owns no key material and
// no session state beyond live connection plumbing — placement is a
// pure function of membership, and every reply routes back by request
// ID. Clients speak the exact single-node protocol; the cluster is
// visible only through the typed REDIRECT/NEED_KEYS recovery frames.
type Router struct {
	cfg RouterConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	backends map[string]*backendConn // "node\x00session" → conn
	draining bool

	statsMu sync.Mutex
	stats   RouterStats

	connWG sync.WaitGroup
}

// NewRouter validates cfg and builds the router. Call Serve or
// ListenAndServe to accept clients.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("cluster: router needs a membership table")
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = serve.DefaultMaxFrame
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.CtrlTimeout == 0 {
		cfg.CtrlTimeout = 2 * time.Minute
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.MaxInflightPerBackend == 0 {
		cfg.MaxInflightPerBackend = 256
	}
	return &Router{
		cfg:      cfg,
		conns:    map[net.Conn]struct{}{},
		backends: map[string]*backendConn{},
	}, nil
}

// Members returns the membership table the router routes by.
func (r *Router) Members() *Membership { return r.cfg.Members }

// Stats returns a copy of the router's counters.
func (r *Router) Stats() RouterStats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *Router) count(f func(*RouterStats)) {
	r.statsMu.Lock()
	f(&r.stats)
	r.statsMu.Unlock()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (r *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (r *Router) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Serve accepts client connections until Shutdown closes the listener.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("cluster: router already shut down")
	}
	r.ln = ln
	r.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			draining := r.draining
			r.mu.Unlock()
			if draining {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			_ = conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.count(func(s *RouterStats) { s.Connections++ })
		r.connWG.Add(1)
		go r.handleConn(conn)
	}
}

// Shutdown stops accepting, closes every client and backend
// connection, and waits for the connection handlers. In-flight
// requests are answered by their owning nodes to the extent the closed
// relay allows; routers are stateless, so clients recover by
// reconnecting to another router.
func (r *Router) Shutdown() {
	r.mu.Lock()
	already := r.draining
	r.draining = true
	ln := r.ln
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	backends := make([]*backendConn, 0, len(r.backends))
	for _, bc := range r.backends {
		backends = append(backends, bc)
	}
	r.mu.Unlock()
	if already {
		return
	}
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	for _, bc := range backends {
		bc.close()
	}
	r.connWG.Wait()
}

// clientConn is the per-client-connection state: which session the
// connection attached and which node that session was routed to.
type clientConn struct {
	r    *Router
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte // reusable frame staging, guarded by wmu

	// session and owner are only touched from this connection's read
	// loop (attach updates them, infer reads them).
	session string
	owner   string // node name the session was last routed to
}

func (r *Router) handleConn(c net.Conn) {
	defer r.connWG.Done()
	cc := &clientConn{r: r, conn: c}
	defer func() {
		_ = c.Close()
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
	}()

	var arena []byte
	for {
		if err := c.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout)); err != nil {
			return
		}
		typ, payload, err := serve.ReadFrameInto(c, &arena, r.cfg.MaxFrame)
		if err != nil {
			return // io error, timeout, or clean EOF: drop the connection
		}
		if !r.dispatch(cc, typ, payload) {
			return
		}
	}
}

// dispatch handles one client frame; false closes the connection.
func (r *Router) dispatch(cc *clientConn, typ serve.FrameType, payload []byte) bool {
	switch typ {
	case serve.FrameSessionNew:
		return r.handleSessionNew(cc, payload)
	case serve.FrameSessionAttach:
		return r.handleSessionAttach(cc, payload)
	case serve.FrameInfer:
		return r.handleInfer(cc, payload)
	case serve.FrameStats:
		doc, err := r.aggregateStatsJSON()
		if err != nil {
			return cc.writeError(0, serve.CodeInternal, err.Error())
		}
		return cc.write(serve.FrameStatsReply, doc)
	default:
		return cc.writeError(0, serve.CodeBadRequest, fmt.Sprintf("unexpected frame type %d", typ))
	}
}

// handleSessionNew routes a key upload to the owner of its content
// address. If a live backend connection for (owner, session) already
// exists the session is known to be resident there and the upload is
// acked without shipping the blob again — content addressing makes
// that sound: identical bytes, identical session.
func (r *Router) handleSessionNew(cc *clientConn, blob []byte) bool {
	id := serve.SessionID(blob)
	owner, ok := r.cfg.Members.Owner(id)
	if !ok {
		return cc.writeError(0, serve.CodeUnavailable, "no active nodes")
	}
	bc, err := r.backend(owner, id, blob)
	if err != nil {
		return cc.relayRouteError(0, err)
	}
	cc.session, cc.owner = id, bc.node
	r.count(func(s *RouterStats) { s.SessionsRouted++ })
	return cc.write(serve.FrameSessionOK, serve.EncodeSessionID(id))
}

// handleSessionAttach routes an attach to the session's owner. The
// owner resolves it through both of its tiers (RAM, then its durable
// store — the cold re-attach path); if neither holds the keys the
// client is asked to re-upload with the typed NEED_KEYS.
func (r *Router) handleSessionAttach(cc *clientConn, payload []byte) bool {
	id, err := serve.DecodeSessionID(payload)
	if err != nil {
		return cc.writeError(0, serve.CodeBadRequest, err.Error())
	}
	owner, ok := r.cfg.Members.Owner(id)
	if !ok {
		return cc.writeError(0, serve.CodeUnavailable, "no active nodes")
	}
	bc, err := r.backend(owner, id, nil)
	if err != nil {
		return cc.relayRouteError(0, err)
	}
	cc.session, cc.owner = id, bc.node
	r.count(func(s *RouterStats) { s.SessionsRouted++ })
	return cc.write(serve.FrameSessionOK, serve.EncodeSessionID(id))
}

// handleInfer relays one inference request to the owning node,
// rewriting the request ID into the backend connection's ID space so
// replies demultiplex back to the right client.
func (r *Router) handleInfer(cc *clientConn, payload []byte) bool {
	req, err := serve.DecodeInfer(payload)
	if err != nil {
		return cc.writeError(0, serve.CodeBadRequest, err.Error())
	}
	if cc.session == "" {
		return cc.writeError(req.ReqID, serve.CodeNoSession, "open or attach a session before inference")
	}
	owner, ok := r.cfg.Members.Owner(cc.session)
	if !ok {
		return cc.writeError(req.ReqID, serve.CodeUnavailable, "no active nodes")
	}
	if owner.Name != cc.owner {
		// Ownership moved (join/drain/leave) since this connection
		// attached: tell the client to re-attach. The router answers
		// immediately instead of silently re-homing an in-flight request
		// — the new owner may need the client to re-upload keys, which
		// only the client can do.
		r.count(func(s *RouterStats) { s.Redirects++ })
		return cc.write(serve.FrameRedirect, serve.EncodeRedirect(req.ReqID, owner.Addr, cc.session))
	}
	bc, err := r.backend(owner, cc.session, nil)
	if err != nil {
		return cc.relayRouteError(req.ReqID, err)
	}
	routerID, err := bc.register(cc, req.ReqID, r.cfg.MaxInflightPerBackend)
	if err != nil {
		r.count(func(s *RouterStats) { s.Busy++ })
		return cc.relayRouteError(req.ReqID, err)
	}
	// The request ID is the first 8 bytes of the payload; rewrite it in
	// place (the payload aliases this connection's read arena) and relay
	// the frame otherwise untouched.
	binary.LittleEndian.PutUint64(payload[:8], routerID)
	if err := bc.write(serve.FrameInfer, payload); err != nil {
		bc.take(routerID)
		r.failBackend(bc, err)
		return cc.writeError(req.ReqID, serve.CodeUnavailable, "owner write failed: "+err.Error())
	}
	r.count(func(s *RouterStats) { s.InfersRelayed++ })
	return true
}

// relayRouteError answers a routing failure with its typed form:
// backend-reported codes pass through, errNeedKeys becomes NEED_KEYS,
// anything else is UNAVAILABLE (transient, retry after backoff).
func (cc *clientConn) relayRouteError(reqID uint64, err error) bool {
	if errors.Is(err, errNeedKeys) {
		cc.r.count(func(s *RouterStats) { s.NeedKeys++ })
		return cc.writeError(reqID, serve.CodeNeedKeys, "session keys not resident on owner; re-upload")
	}
	var re *serve.RequestError
	if errors.As(err, &re) {
		return cc.writeError(reqID, re.Code, re.Msg)
	}
	return cc.writeError(reqID, serve.CodeUnavailable, err.Error())
}

// write sends one frame under the connection write lock and deadline.
func (cc *clientConn) write(typ serve.FrameType, payload []byte) bool {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if err := cc.conn.SetWriteDeadline(time.Now().Add(cc.r.cfg.WriteTimeout)); err != nil {
		return false
	}
	cc.wbuf = serve.AppendFrame(cc.wbuf[:0], typ, payload)
	//lint:holdok wmu exists to serialize frame writes on this connection; the deadline-bounded write is the critical section
	_, err := cc.conn.Write(cc.wbuf)
	return err == nil
}

func (cc *clientConn) writeError(reqID uint64, code serve.ErrCode, msg string) bool {
	return cc.write(serve.FrameError, serve.EncodeError(reqID, code, msg))
}

// errNeedKeys marks an attach that failed because the owning node holds
// no copy of the session's keys; the caller translates it to the typed
// NEED_KEYS reply.
var errNeedKeys = errors.New("cluster: owner needs key re-upload")

// errBusy marks a backend connection at its in-flight cap.
var errBusy = &serve.RequestError{Code: serve.CodeBusy, Msg: "router backend at in-flight cap"}

// backendConn is one multiplexed connection to (node, session): every
// client attached to that session through this router shares it, and
// replies route back by the rewritten request ID — the same demux
// pattern the Go client uses, inverted.
type backendConn struct {
	key     string
	node    string // node name
	addr    string
	session string

	// ready closes when init (dial + attach/upload) finishes; initErr
	// is valid afterwards.
	ready   chan struct{}
	initErr error
	conn    net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]pendingRoute
	dead    bool
}

type pendingRoute struct {
	cc       *clientConn
	clientID uint64
}

func backendKey(node, session string) string { return node + "\x00" + session }

// backend returns a ready backend connection for (owner, session),
// creating and initializing one if needed. With blob set (a session
// upload) a missing session is created by shipping the blob; with blob
// nil a missing session surfaces as errNeedKeys. The first caller for
// a key performs the init; concurrent callers wait on it.
func (r *Router) backend(owner Node, session string, blob []byte) (*backendConn, error) {
	for {
		key := backendKey(owner.Name, session)
		r.mu.Lock()
		if r.draining {
			r.mu.Unlock()
			return nil, &serve.RequestError{Code: serve.CodeDraining, Msg: "router shutting down"}
		}
		bc, ok := r.backends[key]
		if !ok {
			bc = &backendConn{
				key: key, node: owner.Name, addr: owner.Addr, session: session,
				ready:   make(chan struct{}),
				pending: map[uint64]pendingRoute{},
			}
			r.backends[key] = bc
			r.mu.Unlock()
			r.initBackend(bc, blob)
			if bc.initErr != nil {
				return nil, bc.initErr
			}
			return bc, nil
		}
		r.mu.Unlock()
		<-bc.ready
		if bc.initErr != nil {
			// The creator already removed the failed entry; retry so this
			// caller's own init (and its blob, if any) gets a chance.
			continue
		}
		bc.mu.Lock()
		dead := bc.dead
		bc.mu.Unlock()
		if dead {
			r.removeBackend(bc)
			continue
		}
		return bc, nil
	}
}

// initBackend dials the node and establishes the session on the new
// connection: attach first (the cheap path — the node resolves it from
// RAM or cold-loads from its durable store); on SESSION_NOT_FOUND fall
// back to uploading the blob when the caller has one, else report
// errNeedKeys. On success the reply demux loop starts.
func (r *Router) initBackend(bc *backendConn, blob []byte) {
	defer close(bc.ready)
	fail := func(err error) {
		bc.initErr = err
		if bc.conn != nil {
			_ = bc.conn.Close()
		}
		r.removeBackend(bc)
	}
	r.count(func(s *RouterStats) { s.BackendDials++ })
	conn, err := net.DialTimeout("tcp", bc.addr, r.cfg.DialTimeout)
	if err != nil {
		fail(fmt.Errorf("cluster: dialing node %s (%s): %w", bc.node, bc.addr, err))
		return
	}
	bc.conn = conn

	typ, reply, err := bc.ctrl(serve.FrameSessionAttach, serve.EncodeSessionID(bc.session), r.cfg)
	if err != nil {
		fail(err)
		return
	}
	if typ == serve.FrameError {
		_, code, msg, derr := serve.DecodeError(reply)
		if derr != nil {
			fail(fmt.Errorf("cluster: node %s: undecodable error reply: %w", bc.node, derr))
			return
		}
		if code != serve.CodeSessionNotFound {
			fail(&serve.RequestError{Code: code, Msg: msg})
			return
		}
		if blob == nil {
			fail(errNeedKeys)
			return
		}
		// Re-upload-on-miss: ship the client's bundle to the new owner.
		typ, reply, err = bc.ctrl(serve.FrameSessionNew, blob, r.cfg)
		if err != nil {
			fail(err)
			return
		}
		if typ == serve.FrameError {
			_, code, msg, derr := serve.DecodeError(reply)
			if derr != nil {
				fail(fmt.Errorf("cluster: node %s: undecodable error reply: %w", bc.node, derr))
				return
			}
			fail(&serve.RequestError{Code: code, Msg: msg})
			return
		}
	}
	if typ != serve.FrameSessionOK {
		fail(fmt.Errorf("cluster: node %s: unexpected frame %d during session setup", bc.node, typ))
		return
	}
	r.connWG.Add(1)
	go r.backendReadLoop(bc)
}

// ctrl performs one synchronous round-trip during init (the demux loop
// is not running yet, so reading inline is race-free).
func (bc *backendConn) ctrl(typ serve.FrameType, payload []byte, cfg RouterConfig) (serve.FrameType, []byte, error) {
	if err := bc.conn.SetDeadline(time.Now().Add(cfg.CtrlTimeout)); err != nil {
		return 0, nil, err
	}
	if err := bc.write(typ, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: node %s: %w", bc.node, err)
	}
	rtyp, reply, err := serve.ReadFrame(bc.conn, cfg.MaxFrame)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: node %s: %w", bc.node, err)
	}
	// Clear the control deadline: steady-state replies arrive whenever
	// batches complete.
	if err := bc.conn.SetDeadline(time.Time{}); err != nil {
		return 0, nil, err
	}
	return rtyp, reply, nil
}

// backendReadLoop demultiplexes node replies back to their client
// connections, rewriting the router-assigned request ID to the
// client's own.
func (r *Router) backendReadLoop(bc *backendConn) {
	defer r.connWG.Done()
	var arena []byte
	for {
		typ, payload, err := serve.ReadFrameInto(bc.conn, &arena, r.cfg.MaxFrame)
		if err != nil {
			r.failBackend(bc, err)
			return
		}
		switch typ {
		case serve.FrameResult, serve.FrameError:
			if len(payload) < 8 {
				r.failBackend(bc, fmt.Errorf("cluster: node %s: truncated reply", bc.node))
				return
			}
			id := binary.LittleEndian.Uint64(payload[:8])
			if id == 0 && typ == serve.FrameError {
				// Connection-level error from the node: nothing to route it
				// to; the connection is no longer trustworthy.
				r.failBackend(bc, fmt.Errorf("cluster: node %s reported a connection error", bc.node))
				return
			}
			rt, ok := bc.take(id)
			if !ok {
				continue // stale reply for a request we already failed
			}
			binary.LittleEndian.PutUint64(payload[:8], rt.clientID)
			rt.cc.write(typ, payload)
		default:
			r.failBackend(bc, fmt.Errorf("cluster: node %s: unexpected frame type %d", bc.node, typ))
			return
		}
	}
}

// register assigns a router-side request ID and records the return
// route, enforcing the in-flight cap.
func (bc *backendConn) register(cc *clientConn, clientID uint64, maxInflight int) (uint64, error) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.dead {
		return 0, &serve.RequestError{Code: serve.CodeUnavailable, Msg: "owner connection lost"}
	}
	if len(bc.pending) >= maxInflight {
		return 0, errBusy
	}
	bc.nextID++
	id := bc.nextID
	bc.pending[id] = pendingRoute{cc: cc, clientID: clientID}
	return id, nil
}

// take removes and returns the route for id.
func (bc *backendConn) take(id uint64) (pendingRoute, bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	rt, ok := bc.pending[id]
	if ok {
		delete(bc.pending, id)
	}
	return rt, ok
}

// write sends one frame to the node under the backend write lock.
func (bc *backendConn) write(typ serve.FrameType, payload []byte) error {
	bc.wmu.Lock()
	defer bc.wmu.Unlock()
	bc.wbuf = serve.AppendFrame(bc.wbuf[:0], typ, payload)
	//lint:holdok wmu exists to serialize frame writes on the shared backend connection; the write is the critical section
	_, err := bc.conn.Write(bc.wbuf)
	return err
}

// close tears the connection down without failing pendings individually
// (used on router shutdown, when the client conns are closing too).
func (bc *backendConn) close() {
	bc.mu.Lock()
	bc.dead = true
	bc.mu.Unlock()
	if bc.conn != nil {
		_ = bc.conn.Close()
	}
}

// failBackend marks the connection dead, removes it from the pool, and
// answers every pending request with the typed UNAVAILABLE so no
// client hangs on a reply that will never come.
func (r *Router) failBackend(bc *backendConn, cause error) {
	bc.mu.Lock()
	if bc.dead {
		bc.mu.Unlock()
		return
	}
	bc.dead = true
	pending := bc.pending
	bc.pending = map[uint64]pendingRoute{}
	bc.mu.Unlock()

	_ = bc.conn.Close()
	r.removeBackend(bc)
	r.count(func(s *RouterStats) { s.BackendErrors++ })
	for _, rt := range pending {
		rt.cc.writeError(rt.clientID, serve.CodeUnavailable,
			fmt.Sprintf("owner %s connection lost: %v", bc.node, cause))
	}
}

// removeBackend drops bc from the pool if it is still the registered
// entry for its key.
func (r *Router) removeBackend(bc *backendConn) {
	r.mu.Lock()
	if cur, ok := r.backends[bc.key]; ok && cur == bc {
		delete(r.backends, bc.key)
	}
	r.mu.Unlock()
}
