// Package cluster is the horizontal scale-out tier for athena-serve: a
// consistent-hash ring that places sessions on nodes by their content
// address, a membership table with join/drain/leave, a thin stateless
// router speaking the ASV1 frame protocol on the front, and a JSON-RPC
// control plane for operators.
//
// Placement is deterministic: a session's owner is a pure function of
// the active membership set and the session's content-addressed ID, so
// any router (and any node handed the membership list) computes the
// same answer with no coordination. Virtual nodes smooth the load:
// each node projects VNodes points onto the ring (SHA-256 of
// "name#i"), and a session belongs to the first point clockwise from
// the hash of its ID. Adding or removing one node moves only the
// sessions in the arcs that node's points cover — about K/N of them —
// which the ring property tests pin exactly.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per physical node. 64 keeps
// the per-node load imbalance within a few percent at small cluster
// sizes while the ring stays tiny (N*64 points).
const DefaultVNodes = 64

// NodeState is a membership entry's lifecycle state.
type NodeState uint8

// Node lifecycle states.
const (
	// NodeActive nodes take placements.
	NodeActive NodeState = iota
	// NodeDraining nodes are excluded from placement: their sessions'
	// ownership has already moved to the remaining active nodes, and the
	// node only finishes in-flight work before being removed.
	NodeDraining
)

func (s NodeState) String() string {
	switch s {
	case NodeActive:
		return "active"
	case NodeDraining:
		return "draining"
	}
	return "state_" + strconv.Itoa(int(s))
}

// Node is one membership entry.
type Node struct {
	// Name identifies the node on the ring (placement hashes Name, not
	// Addr, so a node can change address without moving its sessions).
	Name string `json:"name"`
	// Addr is the node's ASV1 serving address.
	Addr string `json:"addr"`
	// Admin is the node's HTTP admin address ("" = none); the control
	// plane pushes membership snapshots there so nodes can order their
	// eviction by ownership.
	Admin string `json:"admin,omitempty"`
	// State is the lifecycle state.
	State NodeState `json:"state"`
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Build one with NewRing; reads are safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string // index into no particular table — the owning node name
}

// NewRing projects vnodes points per node (SHA-256 of "name#i") onto
// the 64-bit ring. Node order does not matter; equal inputs build
// identical rings. vnodes <= 0 takes DefaultVNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, name := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, i), node: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A 64-bit collision between distinct names is vanishingly rare
		// but must still order deterministically.
		return a.node < b.node
	})
	return r
}

// pointHash is the ring coordinate of a node's i-th virtual node.
func pointHash(name string, i int) uint64 {
	sum := sha256.Sum256([]byte(name + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash is the ring coordinate of a session ID. The ID is already a
// hex-encoded SHA-256 prefix, but hashing it again keeps placement
// uniform for any caller-chosen key shape.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node owning key: the first point at or clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].node, true
}

// Size returns the number of points on the ring.
func (r *Ring) Size() int { return len(r.points) }

// Membership is the cluster's node table plus the placement ring
// derived from its active subset. All methods are safe for concurrent
// use; every mutation bumps the epoch and rebuilds the ring.
type Membership struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]Node
	epoch  uint64
	ring   *Ring
}

// NewMembership builds an empty table. vnodes <= 0 takes DefaultVNodes.
func NewMembership(vnodes int) *Membership {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &Membership{vnodes: vnodes, nodes: map[string]Node{}}
	m.ring = NewRing(nil, vnodes)
	return m
}

// Join adds (or re-activates) a node. Re-joining an existing name
// updates its addresses and returns it to NodeActive — the path an
// operator uses to cancel a drain.
func (m *Membership) Join(name, addr, admin string) error {
	if name == "" || addr == "" {
		return fmt.Errorf("cluster: join needs a node name and address")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[name] = Node{Name: name, Addr: addr, Admin: admin, State: NodeActive}
	m.bumpLocked()
	return nil
}

// Drain marks a node draining: it is removed from placement (its
// sessions' ownership moves to the remaining active nodes immediately)
// but stays in the table so operators can watch it finish in-flight
// work before Leave.
func (m *Membership) Drain(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	if n.State == NodeDraining {
		return nil // idempotent
	}
	n.State = NodeDraining
	m.nodes[name] = n
	m.bumpLocked()
	return nil
}

// Leave removes a node from the table entirely.
func (m *Membership) Leave(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[name]; !ok {
		return fmt.Errorf("cluster: unknown node %q", name)
	}
	delete(m.nodes, name)
	m.bumpLocked()
	return nil
}

// bumpLocked rebuilds the ring from the active subset and advances the
// epoch. Node names are sorted first so the ring build is independent
// of map iteration order (NewRing sorts anyway; this keeps the input
// canonical for tests that compare rings).
func (m *Membership) bumpLocked() {
	active := make([]string, 0, len(m.nodes))
	for name, n := range m.nodes {
		if n.State == NodeActive {
			active = append(active, name)
		}
	}
	sort.Strings(active)
	m.ring = NewRing(active, m.vnodes)
	m.epoch++
}

// Owner resolves key's owning node. ok is false when no node is active.
func (m *Membership) Owner(key string) (Node, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.ring.Owner(key)
	if !ok {
		return Node{}, false
	}
	n, ok := m.nodes[name]
	return n, ok
}

// Epoch returns the membership version; it advances on every change.
func (m *Membership) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// Node looks up one entry by name.
func (m *Membership) Node(name string) (Node, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.nodes[name]
	return n, ok
}

// Snapshot returns the table (sorted by name) and the current epoch.
func (m *Membership) Snapshot() ([]Node, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, m.epoch
}

// VNodes returns the configured virtual-node count.
func (m *Membership) VNodes() int { return m.vnodes }
