package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"athena/internal/serve"
)

// NodeStatus is one node's row in the cluster metrics document.
type NodeStatus struct {
	Node
	Reachable bool            `json:"reachable"`
	Error     string          `json:"error,omitempty"`
	Snapshot  *serve.Snapshot `json:"snapshot,omitempty"`
}

// ClusterSnapshot is the aggregated cluster metrics document. The
// embedded serve.Snapshot holds the cluster-wide sums in exactly the
// single-node JSON shape, so anything that parses a node's /metrics —
// including the Go client's Stats call through the router — parses the
// cluster's unchanged. Per-node detail and the router's own counters
// ride alongside under "cluster".
type ClusterSnapshot struct {
	serve.Snapshot
	Cluster struct {
		Epoch  uint64       `json:"epoch"`
		Nodes  []NodeStatus `json:"nodes"`
		Router *RouterStats `json:"router,omitempty"`
	} `json:"cluster"`
}

// GatherClusterStats queries every member node over ASV1 for its
// metrics snapshot and sums them. Unreachable nodes appear with their
// error instead of failing the whole document. rs, when non-nil, is
// included as the router counter block.
func GatherClusterStats(m *Membership, rs *RouterStats, timeout time.Duration) ClusterSnapshot {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	var out ClusterSnapshot
	nodes, epoch := m.Snapshot()
	out.Cluster.Epoch = epoch
	out.Cluster.Router = rs

	type res struct {
		i    int
		snap *serve.Snapshot
		err  error
	}
	ch := make(chan res, len(nodes))
	for i, n := range nodes {
		go func(i int, n Node) {
			snap, err := fetchNodeSnapshot(n.Addr, timeout)
			ch <- res{i: i, snap: snap, err: err}
		}(i, n)
	}
	rows := make([]NodeStatus, len(nodes))
	for range nodes {
		r := <-ch
		st := NodeStatus{Node: nodes[r.i]}
		if r.err != nil {
			st.Error = r.err.Error()
		} else {
			st.Reachable = true
			st.Snapshot = r.snap
			mergeSnapshot(&out.Snapshot, r.snap)
		}
		rows[r.i] = st
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	out.Cluster.Nodes = rows
	return out
}

// fetchNodeSnapshot performs one ASV1 stats round-trip against a node.
func fetchNodeSnapshot(addr string, timeout time.Duration) (*serve.Snapshot, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := serve.WriteFrame(conn, serve.FrameStats, nil); err != nil {
		return nil, err
	}
	typ, payload, err := serve.ReadFrame(conn, serve.DefaultMaxFrame)
	if err != nil {
		return nil, err
	}
	if typ != serve.FrameStatsReply {
		return nil, fmt.Errorf("cluster: unexpected frame %d to stats request", typ)
	}
	var snap serve.Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("cluster: undecodable stats reply: %w", err)
	}
	return &snap, nil
}

// mergeSnapshot adds src's counters into dst, recomputing the derived
// fields (mean batch size) from the summed totals.
func mergeSnapshot(dst, src *serve.Snapshot) {
	dst.Requests.Accepted += src.Requests.Accepted
	dst.Requests.Completed += src.Requests.Completed
	dst.Requests.RejectedBusy += src.Requests.RejectedBusy
	dst.Requests.RateLimited += src.Requests.RateLimited
	dst.Requests.DeadlineExpired += src.Requests.DeadlineExpired
	dst.Requests.Failed += src.Requests.Failed
	dst.Connections += src.Connections
	dst.QueueDepth += src.QueueDepth
	dst.InflightBatches += src.InflightBatches
	dst.Batches += src.Batches
	dst.Images += src.Images
	if dst.Batches > 0 {
		dst.MeanBatchSize = float64(dst.Images) / float64(dst.Batches)
	}
	mergeHist(dst, src)
	dst.EvalTimeMS += src.EvalTimeMS

	dst.Ops.PMult += src.Ops.PMult
	dst.Ops.HAdd += src.Ops.HAdd
	dst.Ops.CMult += src.Ops.CMult
	dst.Ops.SMult += src.Ops.SMult
	dst.Ops.Packs += src.Ops.Packs
	dst.Ops.FBSCalls += src.Ops.FBSCalls
	dst.Ops.S2CCalls += src.Ops.S2CCalls
	dst.Ops.Extractions += src.Ops.Extractions
	dst.Ops.KeySwitches += src.Ops.KeySwitches
	dst.Ops.LWEAdds += src.Ops.LWEAdds

	dst.Sessions.Count += src.Sessions.Count
	dst.Sessions.Bytes += src.Sessions.Bytes
	dst.Sessions.CapBytes += src.Sessions.CapBytes
	dst.Sessions.Evictions += src.Sessions.Evictions
	dst.Sessions.Opened += src.Sessions.Opened
	dst.Sessions.HotHits += src.Sessions.HotHits
	dst.Sessions.ColdLoads += src.Sessions.ColdLoads
	dst.Sessions.Misses += src.Sessions.Misses

	if src.Store != nil {
		if dst.Store == nil {
			dst.Store = &serve.StoreSnapshot{}
		}
		dst.Store.Entries += src.Store.Entries
		dst.Store.MemBytes += src.Store.MemBytes
		dst.Store.WALBytes += src.Store.WALBytes
		dst.Store.DiskBytes += src.Store.DiskBytes
		dst.Store.Segments += src.Store.Segments
		dst.Store.Puts += src.Store.Puts
		dst.Store.Loads += src.Store.Loads
		dst.Store.Spills += src.Store.Spills
		dst.Store.Compactions += src.Store.Compactions
		dst.Store.Evictions += src.Store.Evictions
		dst.Store.RecoveredEntries += src.Store.RecoveredEntries
		dst.Store.WALDroppedBytes += src.Store.WALDroppedBytes
		dst.Store.QuarantinedSegments += src.Store.QuarantinedSegments
	}
}

// mergeHist adds src's batch-size histogram into dst's. Buckets come
// from the same server code, so shapes match; a mismatch (mixed
// versions) keeps dst's shape and drops what cannot be aligned.
func mergeHist(dst, src *serve.Snapshot) {
	if len(dst.BatchSizeHist) == 0 {
		dst.BatchSizeHist = append([]serve.BatchBucket(nil), src.BatchSizeHist...)
		return
	}
	if len(dst.BatchSizeHist) != len(src.BatchSizeHist) {
		return
	}
	for i := range dst.BatchSizeHist {
		if dst.BatchSizeHist[i].LE != src.BatchSizeHist[i].LE {
			return
		}
	}
	for i := range dst.BatchSizeHist {
		dst.BatchSizeHist[i].Count += src.BatchSizeHist[i].Count
	}
}

// aggregateStatsJSON is the router's FrameStats answer: the aggregated
// cluster document as JSON.
func (r *Router) aggregateStatsJSON() ([]byte, error) {
	rs := r.Stats()
	snap := GatherClusterStats(r.cfg.Members, &rs, r.cfg.CtrlTimeout)
	return json.Marshal(snap)
}
