package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// MembershipDoc is the wire form of a membership snapshot: what the
// control plane pushes to node admin endpoints (so nodes can order
// eviction by ownership) and what cluster.status returns.
type MembershipDoc struct {
	Epoch  uint64 `json:"epoch"`
	VNodes int    `json:"vnodes"`
	Nodes  []Node `json:"nodes"`
}

// Doc snapshots the membership as a pushable document.
func (m *Membership) Doc() MembershipDoc {
	nodes, epoch := m.Snapshot()
	return MembershipDoc{Epoch: epoch, VNodes: m.VNodes(), Nodes: nodes}
}

// OwnedFunc builds the ownership predicate a node named self should
// install: true when the doc's ring places the session on self. An
// empty ring claims everything (a lone node should not evict on the
// say-so of a vacuous membership); a doc that excludes self claims
// nothing, which is exactly right for a drained node — its sessions
// become the first eviction victims.
func (d MembershipDoc) OwnedFunc(self string) func(id string) bool {
	active := make([]string, 0, len(d.Nodes))
	for _, n := range d.Nodes {
		if n.State == NodeActive {
			active = append(active, n.Name)
		}
	}
	ring := NewRing(active, d.VNodes)
	return func(id string) bool {
		owner, ok := ring.Owner(id)
		return !ok || owner == self
	}
}

// Control is the cluster's JSON-RPC admin plane: membership mutation
// (join/drain/leave), ownership rebalancing, and cluster-wide metrics
// aggregation. It serves POST /rpc (JSON-RPC 2.0) and GET /metrics.
type Control struct {
	members *Membership
	router  *Router // optional: its counters join the metrics document

	// StatsTimeout bounds one node stats round-trip during aggregation.
	StatsTimeout time.Duration
	// PushTimeout bounds one ownership push to a node admin endpoint.
	PushTimeout time.Duration

	client *http.Client
}

// NewControl builds the control plane over members. router may be nil
// (a control plane run standalone still mutates membership and
// aggregates node metrics; only the router counter block is absent).
func NewControl(members *Membership, router *Router) *Control {
	return &Control{
		members:      members,
		router:       router,
		StatsTimeout: 5 * time.Second,
		PushTimeout:  5 * time.Second,
		client:       &http.Client{},
	}
}

// Handler returns the HTTP handler: POST /rpc and GET /metrics.
func (c *Control) Handler() http.Handler {
	mux := http.NewServeMux()
	methods := map[string]rpcMethod{
		"cluster.join":      c.rpcJoin,
		"cluster.drain":     c.rpcDrain,
		"cluster.leave":     c.rpcLeave,
		"cluster.rebalance": c.rpcRebalance,
		"cluster.status":    c.rpcStatus,
		"cluster.metrics":   c.rpcMetrics,
	}
	mux.HandleFunc("/rpc", func(w http.ResponseWriter, r *http.Request) {
		serveRPC(w, r, methods)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "metrics is GET", http.StatusMethodNotAllowed)
			return
		}
		snap := c.gather()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	return mux
}

// joinParams are the cluster.join arguments.
type joinParams struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Admin string `json:"admin,omitempty"`
}

// nameParams are the arguments of the single-node methods.
type nameParams struct {
	Name string `json:"name"`
}

// changeResult reports a membership mutation: the new epoch and how the
// ownership push to node admin endpoints went (best effort — a node
// that misses a push just evicts in plain LRU order until the next).
type changeResult struct {
	Epoch      uint64   `json:"epoch"`
	Pushed     int      `json:"pushed"`
	PushErrors []string `json:"push_errors,omitempty"`
}

func (c *Control) rpcJoin(params json.RawMessage) (any, *rpcError) {
	var p joinParams
	if e := unmarshalParams(params, &p); e != nil {
		return nil, e
	}
	if err := c.members.Join(p.Name, p.Addr, p.Admin); err != nil {
		return nil, &rpcError{Code: rpcInvalidParams, Message: err.Error()}
	}
	return c.changed(), nil
}

func (c *Control) rpcDrain(params json.RawMessage) (any, *rpcError) {
	var p nameParams
	if e := unmarshalParams(params, &p); e != nil {
		return nil, e
	}
	if err := c.members.Drain(p.Name); err != nil {
		return nil, &rpcError{Code: rpcInvalidParams, Message: err.Error()}
	}
	return c.changed(), nil
}

func (c *Control) rpcLeave(params json.RawMessage) (any, *rpcError) {
	var p nameParams
	if e := unmarshalParams(params, &p); e != nil {
		return nil, e
	}
	if err := c.members.Leave(p.Name); err != nil {
		return nil, &rpcError{Code: rpcInvalidParams, Message: err.Error()}
	}
	return c.changed(), nil
}

// rpcRebalance re-pushes the current ownership map to every node admin
// endpoint without changing membership — the recovery path when a node
// missed a push (restart, partition).
func (c *Control) rpcRebalance(json.RawMessage) (any, *rpcError) {
	return c.changed(), nil
}

func (c *Control) rpcStatus(json.RawMessage) (any, *rpcError) {
	return c.members.Doc(), nil
}

func (c *Control) rpcMetrics(json.RawMessage) (any, *rpcError) {
	return c.gather(), nil
}

// changed pushes ownership after a mutation and reports the outcome.
func (c *Control) changed() changeResult {
	pushed, errs := c.PushOwnership()
	res := changeResult{Epoch: c.members.Epoch(), Pushed: pushed}
	for _, err := range errs {
		res.PushErrors = append(res.PushErrors, err.Error())
	}
	return res
}

// PushOwnership POSTs the membership snapshot to every node that
// exposes an admin address. Nodes apply it with OwnedFunc to order
// their eviction; nodes without an admin address are skipped.
func (c *Control) PushOwnership() (pushed int, errs []error) {
	doc := c.members.Doc()
	body, err := json.Marshal(doc)
	if err != nil {
		return 0, []error{err}
	}
	for _, n := range doc.Nodes {
		if n.Admin == "" {
			continue
		}
		if err := c.pushOne(n, body); err != nil {
			errs = append(errs, fmt.Errorf("push to %s: %w", n.Name, err))
			continue
		}
		pushed++
	}
	return pushed, errs
}

func (c *Control) pushOne(n Node, body []byte) error {
	url := "http://" + n.Admin + "/cluster"
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	cl := *c.client
	cl.Timeout = c.PushTimeout
	resp, err := cl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// gather assembles the cluster metrics document.
func (c *Control) gather() ClusterSnapshot {
	var rs *RouterStats
	if c.router != nil {
		s := c.router.Stats()
		rs = &s
	}
	return GatherClusterStats(c.members, rs, c.StatsTimeout)
}
