package cluster_test

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"athena/internal/cluster"
	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
	"athena/internal/serve/client"
)

// e2eEnv shares the client engine across cluster tests (keygen is the
// expensive part).
var e2eEnv struct {
	once sync.Once
	eng  *core.Engine
	err  error
}

func e2eEngine(t *testing.T) *core.Engine {
	t.Helper()
	e2eEnv.once.Do(func() {
		e2eEnv.eng, e2eEnv.err = core.NewEngine(core.TestParams())
	})
	if e2eEnv.err != nil {
		t.Fatal(e2eEnv.err)
	}
	return e2eEnv.eng
}

// clusterNode is one in-process athena-serve node plus its admin
// endpoint (the same POST /cluster handler the binary wires up).
type clusterNode struct {
	name  string
	srv   *serve.Server
	addr  string
	admin *httptest.Server
}

func startNode(t *testing.T, name string) *clusterNode {
	t.Helper()
	demo := serve.DemoNet()
	srv, err := serve.NewServer(serve.Config{
		Params:   core.TestParams(),
		Models:   map[string]*qnn.QNetwork{demo.Name: demo},
		MaxBatch: 16,
		MaxWait:  100 * time.Millisecond,
		MaxQueue: 64,
		DataDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)

	admin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		var doc cluster.MembershipDoc
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		srv.SetSessionOwnership(doc.OwnedFunc(name))
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(admin.Close)

	return &clusterNode{name: name, srv: srv, addr: ln.Addr().String(), admin: admin}
}

// TestClusterDrainUnderLoad is the cluster acceptance test: a 3-node
// cluster behind one router serves 16 retrying clients bit-correctly;
// draining the session's owner mid-traffic re-homes the session via
// REDIRECT + NEED_KEYS re-upload with ZERO failed requests; and the
// aggregated stats document accounts for every request.
func TestClusterDrainUnderLoad(t *testing.T) {
	eng := e2eEngine(t)
	model := serve.DemoNet()

	nodes := map[string]*clusterNode{}
	members := cluster.NewMembership(0)
	for _, name := range []string{"a", "b", "c"} {
		n := startNode(t, name)
		nodes[name] = n
		adminAddr := strings.TrimPrefix(n.admin.URL, "http://")
		if err := members.Join(name, n.addr, adminAddr); err != nil {
			t.Fatal(err)
		}
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{Members: members})
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve(rln)
	t.Cleanup(router.Shutdown)
	routerAddr := rln.Addr().String()

	ctl := cluster.NewControl(members, router)
	control := httptest.NewServer(ctl.Handler())
	t.Cleanup(control.Close)
	if _, errs := ctl.PushOwnership(); len(errs) > 0 {
		t.Fatalf("seed ownership push: %v", errs)
	}

	// 16 reliable clients through the router; client 0 uploads, the rest
	// attach by content address. Inputs are pre-encrypted serially
	// (encryption consumes the engine's PRNG stream) and requests replay
	// the exact ciphertext on retry.
	const N = 16
	const waves = 3
	clients := make([]*client.Reliable, N)
	for i := range clients {
		rc, err := client.DialReliable(routerAddr, eng, client.ReliableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		clients[i] = rc
	}
	session, err := clients[0].OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < N; i++ {
		if err := clients[i].Attach(session); err != nil {
			t.Fatal(err)
		}
	}
	owner, ok := members.Owner(session)
	if !ok {
		t.Fatal("no owner for session")
	}
	t.Logf("session %s placed on node %s", session, owner.Name)

	type testReq struct {
		in  *core.EncryptedInput
		ref []int64
	}
	reqs := make([][]testReq, waves)
	for w := 0; w < waves; w++ {
		reqs[w] = make([]testReq, N)
		for i := 0; i < N; i++ {
			x := serve.DemoInput(uint64(1000 + w*N + i))
			in, err := eng.EncryptInput(model, x)
			if err != nil {
				t.Fatal(err)
			}
			reqs[w][i] = testReq{in: in, ref: model.ForwardInt(x).Data}
		}
	}

	outs := make([][]*core.EncryptedLogits, waves)
	runWave := func(w int) []error {
		outs[w] = make([]*core.EncryptedLogits, N)
		errs := make([]error, N)
		var wg sync.WaitGroup
		for i := 0; i < N; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[w][i], errs[i] = clients[i].InferEncrypted(model, reqs[w][i].in, 0)
			}(i)
		}
		wg.Wait()
		return errs
	}
	checkWave := func(w int, errs []error) {
		t.Helper()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("wave %d client %d failed: %v", w, i, err)
			}
		}
		for i := range outs[w] {
			got, err := eng.DecryptLogits(outs[w][i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if d := got[j] - reqs[w][i].ref[j]; d < -3 || d > 3 {
					t.Fatalf("wave %d client %d logit %d: got %d, plaintext %d", w, i, j, got[j], reqs[w][i].ref[j])
				}
			}
		}
	}

	// Wave 0: steady state through the router.
	checkWave(0, runWave(0))

	// Wave 1: drain the owner mid-flight via the JSON-RPC control plane.
	done := make(chan []error, 1)
	go func() { done <- runWave(1) }()
	time.Sleep(20 * time.Millisecond)
	body := `{"jsonrpc":"2.0","id":1,"method":"cluster.drain","params":{"name":"` + owner.Name + `"}}`
	resp, err := http.Post(control.URL+"/rpc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rpcOut struct {
		Error *struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rpcOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rpcOut.Error != nil {
		t.Fatalf("drain RPC: %s", rpcOut.Error.Message)
	}
	checkWave(1, <-done)

	// Wave 2: entirely after the drain — every request must route to the
	// new owner, with zero failures.
	checkWave(2, runWave(2))

	newOwner, ok := members.Owner(session)
	if !ok || newOwner.Name == owner.Name {
		t.Fatalf("session still owned by drained node %s", owner.Name)
	}
	rs := router.Stats()
	if rs.Redirects == 0 {
		t.Fatal("drain produced no REDIRECTs — the re-home path never ran")
	}
	t.Logf("router stats after drain: %+v", rs)

	// Some client performed the NEED_KEYS re-upload (the new owner had
	// no copy of the keys).
	var totalReuploads uint64
	for _, rc := range clients {
		_, _, _, reuploads := rc.Counters()
		totalReuploads += reuploads
	}
	if totalReuploads == 0 {
		t.Fatal("no client re-uploaded keys — NEED_KEYS path never ran")
	}

	// The aggregated stats document, fetched through the router with the
	// plain single-node client API, accounts for every completed request.
	c, err := client.Dial(routerAddr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Requests.Completed < waves*N {
		t.Fatalf("cluster completed %d requests, want ≥ %d", snap.Requests.Completed, waves*N)
	}
	if snap.MeanBatchSize <= 1 {
		t.Fatalf("mean batch size %.2f through the router: batching never coalesced", snap.MeanBatchSize)
	}

	// The typed cluster section is present in the raw control-plane view.
	mresp, err := http.Get(control.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var cs cluster.ClusterSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Cluster.Nodes) != 3 || cs.Cluster.Router == nil {
		t.Fatalf("cluster metrics document malformed: %d nodes, router=%v", len(cs.Cluster.Nodes), cs.Cluster.Router)
	}
	reachable := 0
	for _, row := range cs.Cluster.Nodes {
		if row.Reachable {
			reachable++
		}
	}
	if reachable != 3 {
		t.Fatalf("%d/3 nodes reachable in metrics", reachable)
	}
}

// TestClusterSessionPlacementSpread: distinct sessions land on
// distinct nodes (the scale-out property — one node would otherwise
// hold every session). Uses raw frame exchanges so no engines are
// needed beyond the shared one.
func TestClusterSessionPlacementSpread(t *testing.T) {
	members := cluster.NewMembership(0)
	for _, name := range []string{"a", "b", "c"} {
		if err := members.Join(name, "127.0.0.1:1", ""); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := serve.SessionID([]byte{byte(i), byte(i >> 4), 0xAB})
		n, ok := members.Owner(id)
		if !ok {
			t.Fatal("no owner")
		}
		seen[n.Name] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 sessions spread over %d of 3 nodes", len(seen))
	}
}
