package cluster

import (
	"testing"

	"athena/internal/par/leakcheck"
)

// TestMain enforces the goroutine-leak baseline over this package's
// tests: every server, router, store, and client the tests start must
// tear down completely, or the binary fails with the survivors'
// stacks.
func TestMain(m *testing.M) { leakcheck.Main(m) }
