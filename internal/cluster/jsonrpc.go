package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Minimal JSON-RPC 2.0 over HTTP POST, stdlib only: one request per
// body (no batching), standard error codes, notifications (requests
// without an id) acknowledged with 204. This is the operator surface —
// a handful of calls per membership change — so clarity beats
// throughput.

// JSON-RPC 2.0 error codes.
const (
	rpcParseError     = -32700
	rpcInvalidRequest = -32600
	rpcMethodNotFound = -32601
	rpcInvalidParams  = -32602
	rpcServerError    = -32000
)

// maxRPCBody bounds one control-plane request body; membership calls
// are tiny, so anything larger is garbage or abuse.
const maxRPCBody = 1 << 20

type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
	Data    any    `json:"data,omitempty"`
}

func (e *rpcError) Error() string { return fmt.Sprintf("jsonrpc %d: %s", e.Code, e.Message) }

type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

// rpcMethod is one registered control-plane method. params is the raw
// JSON params field (may be nil); the result must marshal cleanly.
type rpcMethod func(params json.RawMessage) (any, *rpcError)

// serveRPC dispatches one HTTP request against the method table.
func serveRPC(w http.ResponseWriter, r *http.Request, methods map[string]rpcMethod) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "JSON-RPC requires POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRPCBody+1))
	if err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &rpcError{Code: rpcParseError, Message: "reading body: " + err.Error()}})
		return
	}
	if len(body) > maxRPCBody {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &rpcError{Code: rpcInvalidRequest, Message: "request body too large"}})
		return
	}
	var req rpcRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", Error: &rpcError{Code: rpcParseError, Message: err.Error()}})
		return
	}
	if req.JSONRPC != "2.0" || req.Method == "" {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", ID: req.ID, Error: &rpcError{Code: rpcInvalidRequest, Message: `need "jsonrpc":"2.0" and a method`}})
		return
	}
	fn, ok := methods[req.Method]
	if !ok {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", ID: req.ID, Error: &rpcError{Code: rpcMethodNotFound, Message: "unknown method " + req.Method}})
		return
	}
	result, rerr := fn(req.Params)
	if req.ID == nil { // notification: no response body
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if rerr != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0", ID: req.ID, Error: rerr})
		return
	}
	writeRPC(w, rpcResponse{JSONRPC: "2.0", ID: req.ID, Result: result})
}

func writeRPC(w http.ResponseWriter, resp rpcResponse) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(resp); err != nil {
		// Headers are out; nothing more to do.
		_ = err
	}
}

// unmarshalParams decodes params strictly into dst.
func unmarshalParams(params json.RawMessage, dst any) *rpcError {
	if len(params) == 0 {
		return &rpcError{Code: rpcInvalidParams, Message: "params required"}
	}
	if err := json.Unmarshal(params, dst); err != nil {
		return &rpcError{Code: rpcInvalidParams, Message: err.Error()}
	}
	return nil
}
