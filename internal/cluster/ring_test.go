package cluster

import (
	"fmt"
	"testing"
)

// ringKeys builds a deterministic key population shaped like real
// session IDs (hex content addresses).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	return keys
}

// TestRingDeterministic: equal node sets build identical placement
// regardless of input order.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 64)
	b := NewRing([]string{"c", "a", "b"}, 64)
	if a.Size() != 3*64 || b.Size() != 3*64 {
		t.Fatalf("ring sizes %d/%d, want %d", a.Size(), b.Size(), 3*64)
	}
	for _, k := range ringKeys(2000) {
		oa, ok := a.Owner(k)
		ob, _ := b.Owner(k)
		if !ok || oa != ob {
			t.Fatalf("key %s: owner %q vs %q", k, oa, ob)
		}
	}
}

// TestRingEmpty: the empty ring owns nothing.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingDistribution: with 64 vnodes, no node of three carries more
// than half the keys (the bound is loose on purpose — the property
// that matters is that no node is starved or overwhelmed).
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 64)
	counts := map[string]int{}
	keys := ringKeys(6000)
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for n, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys — imbalance outside [15%%, 55%%]", n, 100*frac)
		}
	}
}

// TestRingMinimalMovementOnJoin: adding a node moves keys only TO the
// new node — no key changes owner between surviving nodes — and the
// moved fraction is near 1/N.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 64)
	after := NewRing([]string{"a", "b", "c", "d"}, 64)
	keys := ringKeys(6000)
	moved := 0
	for _, k := range keys {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "d" {
			t.Fatalf("key %s moved %s→%s: only moves to the new node are allowed", k, ob, oa)
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Expect ≈ 1/4; accept a wide band around it.
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("join moved %.1f%% of keys, want ≈25%%", 100*frac)
	}
}

// TestRingMinimalMovementOnRemove: removing a node moves only the keys
// it owned; every other placement is untouched.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 64)
	after := NewRing([]string{"a", "b"}, 64)
	for _, k := range ringKeys(6000) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob != "c" && oa != ob {
			t.Fatalf("key %s moved %s→%s though its owner survived", k, ob, oa)
		}
		if oa == "c" {
			t.Fatalf("key %s still owned by removed node", k)
		}
	}
}

// TestMembershipLifecycle: join/drain/leave semantics — drain excludes
// from placement but keeps the entry, rejoin cancels a drain, every
// mutation bumps the epoch.
func TestMembershipLifecycle(t *testing.T) {
	m := NewMembership(64)
	if _, ok := m.Owner("k"); ok {
		t.Fatal("empty membership claimed an owner")
	}
	if err := m.Join("", "x", ""); err == nil {
		t.Fatal("join with empty name accepted")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Join("a", "1.2.3.4:7700", "1.2.3.4:7701"))
	must(m.Join("b", "1.2.3.5:7700", ""))
	e2 := m.Epoch()
	if e2 != 2 {
		t.Fatalf("epoch %d after two joins, want 2", e2)
	}

	// Drain b: everything lands on a, the entry survives as draining.
	must(m.Drain("b"))
	for _, k := range ringKeys(100) {
		o, ok := m.Owner(k)
		if !ok || o.Name != "a" {
			t.Fatalf("key %s owned by %q during drain of b, want a", k, o.Name)
		}
	}
	if n, ok := m.Node("b"); !ok || n.State != NodeDraining {
		t.Fatalf("drained node b: %+v ok=%v, want draining entry", n, ok)
	}
	if err := m.Drain("b"); err != nil {
		t.Fatalf("re-drain not idempotent: %v", err)
	}
	if err := m.Drain("ghost"); err == nil {
		t.Fatal("drain of unknown node accepted")
	}

	// Rejoin cancels the drain.
	must(m.Join("b", "1.2.3.5:7700", ""))
	if n, _ := m.Node("b"); n.State != NodeActive {
		t.Fatalf("rejoin left b %v, want active", n.State)
	}

	must(m.Leave("b"))
	if _, ok := m.Node("b"); ok {
		t.Fatal("left node still in table")
	}
	if err := m.Leave("b"); err == nil {
		t.Fatal("double leave accepted")
	}
	nodes, _ := m.Snapshot()
	if len(nodes) != 1 || nodes[0].Name != "a" {
		t.Fatalf("snapshot %+v, want just a", nodes)
	}
}

// TestOwnedFunc: the pushed membership doc yields the same ownership
// split the ring computes, a doc excluding self claims nothing, and an
// empty doc claims everything.
func TestOwnedFunc(t *testing.T) {
	m := NewMembership(64)
	for _, n := range []string{"a", "b", "c"} {
		if err := m.Join(n, n+":7700", ""); err != nil {
			t.Fatal(err)
		}
	}
	doc := m.Doc()
	ownedA := doc.OwnedFunc("a")
	sawOwned, sawUnowned := false, false
	for _, k := range ringKeys(500) {
		o, _ := m.Owner(k)
		if got := ownedA(k); got != (o.Name == "a") {
			t.Fatalf("key %s: OwnedFunc says %v, ring owner is %s", k, got, o.Name)
		}
		if ownedA(k) {
			sawOwned = true
		} else {
			sawUnowned = true
		}
	}
	if !sawOwned || !sawUnowned {
		t.Fatal("degenerate split: ownership predicate never varied")
	}

	// A node outside the doc owns nothing (the drained-away case).
	ghost := doc.OwnedFunc("ghost")
	for _, k := range ringKeys(50) {
		if ghost(k) {
			t.Fatalf("node outside membership claimed key %s", k)
		}
	}
	// Empty membership claims everything (standalone safety).
	empty := MembershipDoc{}.OwnedFunc("a")
	if !empty("anything") {
		t.Fatal("empty membership disowned a session")
	}
}
