package cluster

import (
	"net"
	"testing"
	"time"

	"athena/internal/serve"
)

// startRouter spins a router over the given membership on a loopback
// listener.
func startRouter(t *testing.T, m *Membership) (*Router, string) {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		Members:      m,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 5 * time.Second,
		DialTimeout:  2 * time.Second,
		CtrlTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(r.Shutdown)
	return r, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return conn
}

// expectError reads one frame and requires a typed error with code.
func expectError(t *testing.T, conn net.Conn, code serve.ErrCode) {
	t.Helper()
	typ, payload, err := serve.ReadFrame(conn, serve.DefaultMaxFrame)
	if err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	if typ != serve.FrameError {
		t.Fatalf("frame type %d, want FrameError", typ)
	}
	_, got, msg, err := serve.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != code {
		t.Fatalf("error code %s (%q), want %s", got, msg, code)
	}
}

// TestRouterNoActiveNodes: with an empty ring every session operation
// answers the typed UNAVAILABLE instead of hanging or dropping.
func TestRouterNoActiveNodes(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	if err := serve.WriteFrame(conn, serve.FrameSessionAttach,
		serve.EncodeSessionID("00112233445566778899aabbccddeeff")); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn, serve.CodeUnavailable)
}

// TestRouterUnreachableOwner: a ring whose owner does not answer TCP
// yields UNAVAILABLE (retryable), and the router connection survives
// to answer the next request.
func TestRouterUnreachableOwner(t *testing.T) {
	// A listener we close immediately: connection refused thereafter.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	m := NewMembership(8)
	if err := m.Join("dead", deadAddr, ""); err != nil {
		t.Fatal(err)
	}
	_, addr := startRouter(t, m)
	conn := dialRaw(t, addr)
	for i := 0; i < 2; i++ { // twice: the conn must stay usable after the error
		if err := serve.WriteFrame(conn, serve.FrameSessionAttach,
			serve.EncodeSessionID("00112233445566778899aabbccddeeff")); err != nil {
			t.Fatal(err)
		}
		expectError(t, conn, serve.CodeUnavailable)
	}
}

// TestRouterMalformedInfer: an inference payload too short to carry a
// header is answered BAD_REQUEST before any backend work.
func TestRouterMalformedInfer(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	if err := serve.WriteFrame(conn, serve.FrameInfer, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn, serve.CodeBadRequest)
}

// TestRouterInferWithoutSession: a well-formed inference on a fresh
// connection gets the typed NO_SESSION.
func TestRouterInferWithoutSession(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	if err := serve.WriteFrame(conn, serve.FrameInfer,
		serve.EncodeInfer(7, 0, "m", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn, serve.CodeNoSession)
}

// TestRouterUnexpectedFrameType: server-to-client frame types arriving
// from a client are rejected, typed, without closing the connection.
func TestRouterUnexpectedFrameType(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	if err := serve.WriteFrame(conn, serve.FrameResult, []byte("nonsense")); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn, serve.CodeBadRequest)
}

// TestRouterOneByteTrickle: a frame delivered one byte at a time (the
// classic slow-loris shape) is reassembled and answered exactly like a
// whole one.
func TestRouterOneByteTrickle(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	frame := serve.AppendFrame(nil, serve.FrameSessionAttach,
		serve.EncodeSessionID("00112233445566778899aabbccddeeff"))
	for _, b := range frame {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	expectError(t, conn, serve.CodeUnavailable)
}

// TestRouterTruncatedFrame: a header promising more payload than ever
// arrives must not wedge the router — the connection just times out
// and dies, and the router keeps serving others.
func TestRouterTruncatedFrame(t *testing.T) {
	r, err := NewRouter(RouterConfig{
		Members:      NewMembership(8),
		ReadTimeout:  200 * time.Millisecond, // short: the test waits this out
		WriteTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(r.Shutdown)
	addr := ln.Addr().String()

	conn := dialRaw(t, addr)
	frame := serve.AppendFrame(nil, serve.FrameSessionAttach, make([]byte, 100))
	if _, err := conn.Write(frame[:20]); err != nil { // header + 8 of 100 payload bytes
		t.Fatal(err)
	}
	// The router must hang up on its own (read deadline), not loop.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("router answered a truncated frame")
	}

	// A second client is unaffected.
	conn2 := dialRaw(t, addr)
	if err := serve.WriteFrame(conn2, serve.FrameSessionAttach,
		serve.EncodeSessionID("00112233445566778899aabbccddeeff")); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn2, serve.CodeUnavailable)
}

// TestRouterGarbageMagic: random bytes instead of a frame header drop
// the connection without disturbing the listener.
func TestRouterGarbageMagic(t *testing.T) {
	_, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := conn.Read(buf); err != nil {
			break // closed, as it should be
		}
	}
	conn2 := dialRaw(t, addr)
	if err := serve.WriteFrame(conn2, serve.FrameInfer, []byte{9}); err != nil {
		t.Fatal(err)
	}
	expectError(t, conn2, serve.CodeBadRequest)
}

// TestRouterShutdownIdempotent: Shutdown twice is safe, and a router
// refuses to serve again afterwards.
func TestRouterShutdownIdempotent(t *testing.T) {
	r, addr := startRouter(t, NewMembership(8))
	conn := dialRaw(t, addr)
	_ = conn
	r.Shutdown()
	r.Shutdown()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := r.Serve(ln); err == nil {
		t.Fatal("shut-down router accepted a new listener")
	}
}
