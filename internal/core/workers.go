package core

import (
	"athena/internal/bfv"
	"athena/internal/fbs"
	"athena/internal/lwe"
	"athena/internal/pack"
	"athena/internal/par"
)

// evalWorker bundles the single-goroutine state one evaluation thread
// needs to run any stage of the five-step pipeline: an evaluator (its
// scratch arena makes it single-caller), an encoder, packer staging, a
// dimension-switch handle, and local operation counters. The engine owns
// one top-level worker (w0, wrapping the engine's own evaluator) plus a
// pool of ShallowCopy'd lanes that the operator-level fan-outs run on.
type evalWorker struct {
	e      *Engine
	ev     *bfv.Evaluator // FBS-level evaluator (pack + LUT ladders)
	evP    *bfv.Evaluator // post-level evaluator (mask, S2C, accumulation)
	codP   *bfv.Encoder   // post-level encoder (kernel/mask lifts)
	packSc *pack.Scratch
	sw     *lwe.Switcher

	// stats accumulates this worker's operation counts; flushStats folds
	// them into Engine.Stats at the end of every public entry point.
	stats OpStats

	// canFork marks the top-level worker: only it may fan work across
	// the engine pool. Pooled lanes run nested operator loops serially,
	// so two lanes can never collide on the same worker slot.
	canFork bool
}

func (e *Engine) newWorker(ev, evP *bfv.Evaluator, codP *bfv.Encoder, canFork bool) *evalWorker {
	return &evalWorker{
		e:       e,
		ev:      ev,
		evP:     evP,
		codP:    codP,
		packSc:  e.packer.NewScratch(),
		sw:      e.ksk.NewSwitcher(),
		canFork: canFork,
	}
}

// forEach runs f over [0, n), fanning across the engine's worker lanes
// when wk is the top-level worker and o judges the fan-out worthwhile.
// On a pooled lane — or when o selects one worker — it degrades to the
// serial loop on wk itself. Work is split into the fixed par.Partition
// blocks and f must only write i-indexed state, so results are
// bit-identical at any GOMAXPROCS.
func (wk *evalWorker) forEach(n int, o par.Options, f func(ln *evalWorker, i int)) {
	if !wk.canFork || o.Workers(n) <= 1 {
		for i := 0; i < n; i++ {
			f(wk, i)
		}
		return
	}
	lanes := wk.e.lanes
	par.ForEach(n, o, func(w, i int) { f(lanes.Get(w), i) })
}

// fbsFor resolves a canonical FBS evaluator to the instance this worker
// may evaluate with. The top-level worker is the only caller of the
// canonical object, so it uses it directly (preserving its lane pool
// across calls); pooled lanes take a fresh ShallowCopy, because the
// canonical may be shared across concurrently-evaluated images. The
// canonical pointer keeps its identity everywhere else (valSet.pending,
// the engine LUT caches); clones live only for one packFBS call.
func (wk *evalWorker) fbsFor(canonical *fbs.Evaluator) *fbs.Evaluator {
	if canonical == nil || wk.canFork {
		return canonical
	}
	return canonical.ShallowCopy()
}

// add accumulates o into s and resets o.
func (s *OpStats) add(o *OpStats) {
	s.PMult += o.PMult
	s.HAdd += o.HAdd
	s.CMult += o.CMult
	s.SMult += o.SMult
	s.Packs += o.Packs
	s.FBSCalls += o.FBSCalls
	s.S2CCalls += o.S2CCalls
	s.Extractions += o.Extractions
	s.KeySwitches += o.KeySwitches
	s.LWEAdds += o.LWEAdds
	*o = OpStats{}
}

// flushStats folds the per-worker operation counters into e.Stats. The
// counters are integer sums, so the totals are independent of how the
// work was partitioned; flushing at the end of every public entry point
// keeps the externally visible accumulation order fixed.
func (e *Engine) flushStats() {
	e.Stats.add(&e.w0.stats)
	e.lanes.Each(func(ln *evalWorker) { e.Stats.add(&ln.stats) })
}

// firstErr returns the lowest-indexed error of a fan-out, so the
// reported failure does not depend on scheduling.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
