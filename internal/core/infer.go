package core

import (
	"fmt"
	"sort"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/fbs"
	"athena/internal/lwe"
	"athena/internal/par"
	"athena/internal/qnn"
)

// Infer runs the quantized network on input x (already quantized to the
// network's integer input encoding) entirely under encryption, and
// returns the decrypted output logits. It is the convenience wrapper
// around the three-phase client/server API in session.go.
func (e *Engine) Infer(q *qnn.QNetwork, x *qnn.IntTensor) ([]int64, error) {
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	in, err := e.EncryptInput(q, x)
	if err != nil {
		return nil, err
	}
	out, err := e.EvaluateEncrypted(q, in)
	if err != nil {
		return nil, err
	}
	return e.DecryptLogits(out)
}

// inputState wraps either pre-encrypted conv inputs (first layer) or the
// usual labeled LWE values.
type inferState struct {
	vs *valSet
	// firstInputs holds the client-encrypted coefficient encodings of
	// the first linear layer, consumed once.
	firstInputs []*bfv.Ciphertext
	firstPlan   *coeffenc.Plan

	// final carries the terminal layer's accumulators once the last op
	// has run. Keeping it in the per-inference state (rather than on the
	// engine) lets batched images evaluate concurrently.
	final *finalResult
}

func (e *Engine) encryptInput(q *qnn.QNetwork, x *qnn.IntTensor) (*inferState, error) {
	first, err := firstConv(q)
	if err != nil {
		return nil, err
	}
	if x.C != first.Shape.Cin || x.H != first.Shape.H || x.W != first.Shape.W {
		return nil, fmt.Errorf("core: input %dx%dx%d does not match first layer %dx%dx%d",
			x.C, x.H, x.W, first.Shape.Cin, first.Shape.H, first.Shape.W)
	}
	plan, err := coeffenc.NewPlan(first.Shape, e.Ctx.N, coeffenc.AthenaOrder)
	if err != nil {
		return nil, err
	}
	m3 := x.To3D()
	inputs := make([]*bfv.Ciphertext, plan.InBatches)
	for ib := 0; ib < plan.InBatches; ib++ {
		vec := plan.EncodeInput(m3, ib)
		inputs[ib] = e.enc.Encrypt(e.cod.EncodeCoeffs(vec))
	}
	return &inferState{firstInputs: inputs, firstPlan: plan}, nil
}

func firstConv(q *qnn.QNetwork) (*qnn.QConv, error) {
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	seq, ok := q.Blocks[0].(qnn.QSeq)
	if !ok || len(seq) == 0 {
		return nil, fmt.Errorf("core: network must start with a QSeq")
	}
	c, ok := seq[0].(*qnn.QConv)
	if !ok {
		return nil, fmt.Errorf("core: network must start with a linear layer")
	}
	return c, nil
}

// applyOp dispatches one quantized operation.
func (wk *evalWorker) applyOp(op qnn.QOp, st *inferState, lastOp bool) (*inferState, error) {
	e := wk.e
	switch o := op.(type) {
	case *qnn.QConv:
		if st.firstInputs != nil {
			// First layer: inputs are already coefficient-encoded, but
			// arrive from the client at the full chain — drop them to the
			// post level so the accumulation runs on the short chain like
			// every later layer.
			inputs := make([]*bfv.Ciphertext, len(st.firstInputs))
			for i, ct := range st.firstInputs {
				var err error
				if inputs[i], err = e.Ctx.ModDown(ct, e.ctxP.Level()); err != nil {
					return nil, err
				}
			}
			accs := wk.convAccumulate(o, st.firstPlan, inputs)
			if lastOp {
				return &inferState{vs: &valSet{}, final: &finalResult{conv: o, plan: st.firstPlan, accs: accs}}, nil
			}
			out := &valSet{C: o.Shape.Cout, H: o.Shape.OutH(), W: o.Shape.OutW(), vals: map[vkey]lwe.Ciphertext{}}
			for ob, acc := range accs {
				m, err := wk.extract(acc, st.firstPlan.ValidCoeffs(ob))
				if err != nil {
					return nil, err
				}
				for k, v := range m {
					out.vals[k] = v
				}
			}
			var err error
			out.pending, err = e.lutFor(o)
			if err != nil {
				return nil, err
			}
			out.fn = o.Remap
			return &inferState{vs: out}, nil
		}
		if lastOp {
			return wk.finalConv(o, st)
		}
		vs, err := wk.convLayer(o, st.vs)
		if err != nil {
			return nil, err
		}
		return &inferState{vs: vs}, nil
	case *qnn.QMaxPool:
		vs, err := wk.maxPool(o, st.vs)
		if err != nil {
			return nil, err
		}
		return &inferState{vs: vs}, nil
	case *qnn.QAvgPool:
		vs, err := wk.avgPool(o, st.vs)
		if err != nil {
			return nil, err
		}
		return &inferState{vs: vs}, nil
	default:
		return nil, fmt.Errorf("core: unsupported op %T", op)
	}
}

// finalResult holds the terminal layer's accumulator ciphertexts for
// decryption.
type finalResult struct {
	conv *qnn.QConv
	plan *coeffenc.Plan
	accs []*bfv.Ciphertext
}

var errNoFinal = fmt.Errorf("core: network did not end in a linear layer")

// finalConv runs the last linear layer and carries its accumulators in
// the returned state.
func (wk *evalWorker) finalConv(q *qnn.QConv, st *inferState) (*inferState, error) {
	plan, err := coeffenc.NewPlan(q.Shape, wk.e.Ctx.N, coeffenc.AthenaOrder)
	if err != nil {
		return nil, err
	}
	inputs, err := wk.convInputs(plan, st.vs)
	if err != nil {
		return nil, err
	}
	accs := wk.convAccumulate(q, plan, inputs)
	return &inferState{vs: &valSet{}, final: &finalResult{conv: q, plan: plan, accs: accs}}, nil
}

// residualBlock runs body and shortcut, joins them with an LWE addition,
// and leaves the post-add ReLU-clamp LUT pending.
func (wk *evalWorker) residualBlock(r *qnn.QResidual, st *inferState) (*inferState, error) {
	e := wk.e
	if st.firstInputs != nil {
		return nil, fmt.Errorf("core: residual block cannot be the first block")
	}
	in, err := wk.materialize(st.vs)
	if err != nil {
		return nil, err
	}
	body := in
	for _, op := range r.Body {
		c, ok := op.(*qnn.QConv)
		if !ok {
			return nil, fmt.Errorf("core: residual body supports linear layers only, got %T", op)
		}
		body, err = wk.convLayer(c, body)
		if err != nil {
			return nil, err
		}
	}
	body, err = wk.materialize(body)
	if err != nil {
		return nil, err
	}
	short := in
	for _, op := range r.Shortcut {
		c, ok := op.(*qnn.QConv)
		if !ok {
			return nil, fmt.Errorf("core: residual shortcut supports linear layers only, got %T", op)
		}
		short, err = wk.convLayer(c, short)
		if err != nil {
			return nil, err
		}
	}
	if len(r.Shortcut) > 0 {
		short, err = wk.materialize(short)
		if err != nil {
			return nil, err
		}
	}
	if body.C != short.C || body.H != short.H || body.W != short.W {
		return nil, fmt.Errorf("core: residual branch shapes differ")
	}
	out := &valSet{C: body.C, H: body.H, W: body.W, vals: make(map[vkey]lwe.Ciphertext, len(body.vals))}
	for k, b := range body.vals {
		s, ok := short.vals[k]
		if !ok {
			return nil, fmt.Errorf("core: residual shortcut missing value %v", k)
		}
		out.vals[k] = e.addLWE(b, s)
		wk.stats.LWEAdds++
	}
	joinLUT, err := fbs.NewEvaluator(e.ctxF, fbs.NewLUT(e.P.T, r.JoinRemap))
	if err != nil {
		return nil, err
	}
	out.pending = joinLUT
	out.fn = r.JoinRemap
	return &inferState{vs: out}, nil
}

// avgPool sums each window with LWE additions in a scaled domain (so
// the per-value extraction noise is crushed by the divide) and leaves
// the divide LUT pending.
func (wk *evalWorker) avgPool(p *qnn.QAvgPool, vs *valSet) (*valSet, error) {
	e := wk.e
	aMax := int64(1)<<(e.netABits-1) - 1
	scale := e.poolScale(aMax * int64(p.K*p.K))
	in, err := wk.materializeScaled(vs, scale)
	if err != nil {
		return nil, err
	}
	oh, ow := in.H/p.K, in.W/p.K
	out := &valSet{C: in.C, H: oh, W: ow, vals: make(map[vkey]lwe.Ciphertext)}
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				acc := e.zeroLWE()
				for i := 0; i < p.K; i++ {
					for j := 0; j < p.K; j++ {
						acc = e.addLWE(acc, in.vals[vkey{c, y*p.K + i, x*p.K + j}])
						wk.stats.LWEAdds++
					}
				}
				out.vals[vkey{c, y, x}] = acc
			}
		}
	}
	div := scale * int64(p.K*p.K)
	out.pending, err = e.divideFor(int(div))
	if err != nil {
		return nil, err
	}
	out.fn = func(x int64) int64 { return roundDiv(x, div) }
	return out, nil
}

// maxPool runs the PEGASUS-style max tree: max(a,b) = b + ReLU(a−b),
// with each tree level's ReLU batched into as few FBS calls as possible.
// The tree operates in a scaled domain so the extraction noise of each
// ReLU round stays far below one activation step; the divide back is
// left pending for the consumer's LUT.
func (wk *evalWorker) maxPool(p *qnn.QMaxPool, vs *valSet) (*valSet, error) {
	e := wk.e
	aMax := int64(1)<<(e.netABits-1) - 1
	scale := e.poolScale(aMax)
	in, err := wk.materializeScaled(vs, scale)
	if err != nil {
		return nil, err
	}
	oh, ow := in.H/p.K, in.W/p.K
	// Gather each window's candidates.
	windows := make(map[vkey][]lwe.Ciphertext)
	for c := 0; c < in.C; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var cands []lwe.Ciphertext
				for i := 0; i < p.K; i++ {
					for j := 0; j < p.K; j++ {
						cands = append(cands, in.vals[vkey{c, y*p.K + i, x*p.K + j}])
					}
				}
				windows[vkey{c, y, x}] = cands
			}
		}
	}
	relu, err := e.reluFull()
	if err != nil {
		return nil, err
	}
	for levelHasPairs(windows) {
		// Collect one (a,b) pair per window for this level.
		type pend struct {
			k    vkey
			b    lwe.Ciphertext
			rest []lwe.Ciphertext
		}
		var pends []pend
		var diffs []lwe.Ciphertext
		for _, k := range sortedWindowKeys(windows) {
			cands := windows[k]
			if len(cands) < 2 {
				continue
			}
			a, b := cands[0], cands[1]
			diffs = append(diffs, e.subLWE(a, b))
			pends = append(pends, pend{k: k, b: b, rest: cands[2:]})
		}
		// Batch-ReLU the differences, chunked by slot capacity.
		relus, err := wk.batchLUT(diffs, relu)
		if err != nil {
			return nil, err
		}
		for i, pd := range pends {
			m := e.addLWE(pd.b, relus[i]) // max(a,b)
			wk.stats.LWEAdds++
			windows[pd.k] = append([]lwe.Ciphertext{m}, pd.rest...)
		}
	}
	out := &valSet{C: in.C, H: oh, W: ow, vals: make(map[vkey]lwe.Ciphertext)}
	for k, cands := range windows {
		out.vals[k] = cands[0]
	}
	out.pending, err = e.divideFor(int(scale))
	if err != nil {
		return nil, err
	}
	out.fn = func(x int64) int64 { return roundDiv(x, scale) }
	return out, nil
}

func sortedWindowKeys(w map[vkey][]lwe.Ciphertext) []vkey {
	keys := make([]vkey, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.C != b.C {
			return a.C < b.C
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return keys
}

func levelHasPairs(w map[vkey][]lwe.Ciphertext) bool {
	for _, c := range w {
		if len(c) >= 2 {
			return true
		}
	}
	return false
}

// reluFull is the plain ReLU LUT (no clamp change) used by the max tree.
func (e *Engine) reluFull() (*fbs.Evaluator, error) {
	return e.reluClampFor(63) // lim = 2^62-1: effectively unclamped ReLU
}

// batchLUT applies a LUT to a flat list of LWE values via
// pack→FBS→S2C→extract, preserving order. The slot-capacity chunks are
// independent bootstrapping rounds and fan out across worker lanes;
// each chunk writes only its own out[start:end] window.
func (wk *evalWorker) batchLUT(vals []lwe.Ciphertext, lut *fbs.Evaluator) ([]lwe.Ciphertext, error) {
	e := wk.e
	n := e.Ctx.N
	out := make([]lwe.Ciphertext, len(vals))
	chunks := (len(vals) + n - 1) / n
	errs := make([]error, chunks)
	wk.forEach(chunks, par.Options{MinGrain: 1}, func(ln *evalWorker, ci int) {
		start := ci * n
		end := start + n
		if end > len(vals) {
			end = len(vals)
		}
		validity := make([]bool, end-start)
		for i := range validity {
			validity[i] = true
		}
		ct, err := ln.packFBS(vals[start:end], lut, e.slotMask(validity))
		if err != nil {
			errs[ci] = err
			return
		}
		ct, err = ln.toCoeffs(ct)
		if err != nil {
			errs[ci] = err
			return
		}
		flat, err := ln.extractFlat(ct, end-start)
		if err != nil {
			errs[ci] = err
			return
		}
		copy(out[start:end], flat)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}
