// Package core implements the Athena framework engine: the five-step
// loop of Fig. 2 that runs a quantized CNN under FHE. Per linear layer:
//
//	① coefficient-encoded convolution / FC   (PMult + HAdd, no rotations)
//	② modulus switch Q → qMid                 (kills the linear noise)
//	③ sample extraction + N→n keyswitch +
//	   LWE modulus switch to t                 (RLWE → per-value LWE)
//	④ BSGS packing into BFV slots at Q         (homomorphic decryption =
//	                                            the noise refresh)
//	⑤ functional bootstrapping (fused
//	   activation+remap LUT) and S2C           (back to coefficients)
//
// Residual additions and average pooling run directly on LWE ciphertexts
// (phase addition); max pooling uses the PEGASUS-style max tree of
// b + ReLU(a−b) FBS lookups.
package core

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/ring"
)

// Params fixes an engine instance.
type Params struct {
	LogN   int    // BFV ring degree
	QiBits int    // bits per RNS prime
	QiNum  int    // number of RNS primes in Q
	T      uint64 // plaintext modulus (prime, 1 mod 2N)
	LWEDim int    // n: LWE dimension after the degree switch
	MidExp uint   // qMid = T << MidExp: extraction modulus
	KSBase uint64 // LWE keyswitch decomposition base
	Sigma  float64
	Seed   uint64

	// Level schedule for per-stage RNS modulus dropping. Packing and the
	// FBS polynomial evaluation run at FBSLevel limbs; everything after
	// the LUT — masking, S2C, the next layer's accumulation, extraction —
	// runs at PostLevel limbs. Zero selects the defaults (QiNum−2 clamped
	// to [2, QiNum] for FBS, 2 clamped to [1, FBSLevel] for post); set
	// FBSLevel = QiNum to disable dropping entirely.
	FBSLevel  int
	PostLevel int
}

// Levels resolves the (FBSLevel, PostLevel) schedule: explicit values are
// clamped into range, zeros take the defaults. FBS needs enough limbs for
// the ~log2(t) multiplicative depth of the LUT ladder; the post stages
// are depth-1 (plaintext products and one rescale), so two limbs of
// headroom above qMid suffice.
func (p Params) Levels() (fbsL, postL int) {
	fbsL = p.FBSLevel
	if fbsL == 0 {
		fbsL = p.QiNum - 1
	}
	if fbsL < 2 {
		fbsL = 2
	}
	if fbsL > p.QiNum {
		fbsL = p.QiNum
	}
	postL = p.PostLevel
	if postL == 0 {
		postL = 2
	}
	if postL < 1 {
		postL = 1
	}
	if postL > fbsL {
		postL = fbsL
	}
	return fbsL, postL
}

// TestParams is a reduced—but fully functional—parameter set: every code
// path of the full pipeline runs, with zero security margin. t = 257
// (a Fermat prime like the paper's 65537) keeps FBS at 46 ciphertext
// multiplications so integration tests finish quickly.
func TestParams() Params {
	return Params{
		LogN:   7,
		QiBits: 50,
		QiNum:  6,
		T:      257,
		LWEDim: 32,
		MidExp: 12,
		KSBase: 1 << 7,
		Sigma:  ring.DefaultSigma,
		Seed:   1,
	}
}

// FullParams is the paper's production setting (Section 3.3): N = 2^15,
// log2 Q = 720 (12 60-bit primes), t = 65537, n = 2048. Software
// execution at this size is possible but slow; it is primarily consumed
// by the compiler/simulator pair and the parameter/size calculators.
func FullParams() Params {
	return Params{
		LogN:   15,
		QiBits: 60,
		QiNum:  12,
		T:      65537,
		LWEDim: 2048,
		MidExp: 12,
		KSBase: 1 << 7,
		Sigma:  ring.DefaultSigma,
		Seed:   1,
	}
}

// MediumParams supports real (if small) quantized models: t = 65537
// holds 17-bit accumulators, N = 2^11 fits 28×28 feature maps.
func MediumParams() Params {
	return Params{
		LogN:   11,
		QiBits: 55,
		QiNum:  12,
		T:      65537,
		LWEDim: 128,
		MidExp: 12,
		KSBase: 1 << 7,
		Sigma:  ring.DefaultSigma,
		Seed:   1,
	}
}

// BFVParameters derives the bfv parameter set.
func (p Params) BFVParameters() (bfv.Parameters, error) {
	primes, err := ring.GenerateNTTPrimes(p.QiBits, p.LogN, p.QiNum)
	if err != nil {
		return bfv.Parameters{}, fmt.Errorf("core: %w", err)
	}
	return bfv.Parameters{LogN: p.LogN, Qi: primes, T: p.T, Sigma: p.Sigma}, nil
}

// QMid returns the intermediate extraction modulus t·2^MidExp.
func (p Params) QMid() uint64 { return p.T << p.MidExp }

// CiphertextBytes returns the size of one ciphertext at these parameters
// (Table 1's "Cipher. size" metric).
func (p Params) CiphertextBytes() int {
	return 2 * (1 << p.LogN) * p.QiNum * 8
}
