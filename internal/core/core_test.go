package core

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

var (
	engOnce sync.Once
	eng     *Engine
	engErr  error
)

// testEngine builds one shared engine at TestParams (key generation and
// S2C compilation are the expensive parts; the engine is model-agnostic).
func testEngine(t *testing.T) *Engine {
	t.Helper()
	engOnce.Do(func() {
		eng, engErr = NewEngine(TestParams())
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	eng.Stats = OpStats{}
	return eng
}

// tinyConv builds a QConv with ternary weights and small dynamic range so
// accumulators stay inside t=257.
func tinyConv(shape coeffenc.ConvShape, act qnn.Activation, mult float64, seed uint64) *qnn.QConv {
	rng := rand.New(rand.NewPCG(seed, 0x7c))
	w := make([][][][]int64, shape.Cout)
	for co := range w {
		w[co] = make([][][]int64, shape.Cin)
		for ci := range w[co] {
			w[co][ci] = make([][]int64, shape.K)
			for i := range w[co][ci] {
				w[co][ci][i] = make([]int64, shape.K)
				for j := range w[co][ci][i] {
					w[co][ci][i][j] = int64(rng.IntN(3)) - 1
				}
			}
		}
	}
	bias := make([]int64, shape.Cout)
	for i := range bias {
		bias[i] = int64(rng.IntN(7)) - 3
	}
	return &qnn.QConv{
		Shape:      shape,
		Weights:    w,
		Bias:       bias,
		Act:        act,
		Multiplier: mult,
		ActBits:    4, // activations in [-7, 7] / [0, 7]
		IsDense:    shape.H == 1 && shape.K == 1,
		MaxAcc:     120,
	}
}

func randInput(c, h, w int, bound int64, seed uint64) *qnn.IntTensor {
	rng := rand.New(rand.NewPCG(seed, 0x1f))
	x := qnn.NewIntTensor(c, h, w)
	for i := range x.Data {
		x.Data[i] = int64(rng.Uint64N(uint64(bound + 1)))
	}
	return x
}

// compareLogits checks the FHE output against the exact plaintext
// reference, allowing deviations from the e_ms rounding noise.
func compareLogits(t *testing.T, got, want []int64, tol int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("logit count %d want %d", len(got), len(want))
	}
	for i := range got {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("logit %d: encrypted %d vs plaintext %d (|diff| > %d)\nall got:  %v\nall want: %v",
				i, got[i], want[i], tol, got, want)
		}
	}
}

func TestEncryptedConvChain(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny-chain", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 1),
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 2),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 3),
		}},
	}
	x := randInput(1, 6, 6, 7, 10)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 2)
	if e.Stats.FBSCalls < 2 || e.Stats.Packs < 2 || e.Stats.S2CCalls < 2 {
		t.Fatalf("pipeline steps missing: %+v", e.Stats)
	}
	t.Logf("conv-chain stats: %+v", e.Stats)
}

func TestEncryptedAvgPool(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny-avg", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 4),
			&qnn.QAvgPool{K: 2},
			tinyConv(coeffenc.FCShape(2*3*3, 4), qnn.ActNone, 1.0/8, 5),
		}},
	}
	x := randInput(1, 6, 6, 7, 11)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 2)
}

func TestEncryptedMaxPool(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny-max", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 6),
			&qnn.QMaxPool{K: 2},
			tinyConv(coeffenc.FCShape(2*3*3, 4), qnn.ActNone, 1.0/8, 7),
		}},
	}
	x := randInput(1, 6, 6, 7, 12)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 3)
}

func TestEncryptedResidualBlock(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny-res", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{
			qnn.QSeq{
				tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 8),
			},
			&qnn.QResidual{
				Body: qnn.QSeq{
					tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 9),
					tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActNone, 1.0/16, 10),
				},
				ActBits: 4,
			},
			qnn.QSeq{
				tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 11),
			},
		},
	}
	x := randInput(1, 6, 6, 7, 13)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 3)
	if e.Stats.LWEAdds == 0 {
		t.Fatal("residual join did not use LWE additions")
	}
}

func TestEncryptedProjectionShortcut(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny-proj", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{
			qnn.QSeq{
				tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 14),
			},
			&qnn.QResidual{
				Body: qnn.QSeq{
					tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 4, K: 3, Stride: 2, Pad: 1}, qnn.ActReLU, 1.0/16, 15),
					tinyConv(coeffenc.ConvShape{H: 3, W: 3, Cin: 4, Cout: 4, K: 3, Stride: 1, Pad: 1}, qnn.ActNone, 1.0/16, 16),
				},
				Shortcut: qnn.QSeq{
					tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 2, Cout: 4, K: 1, Stride: 2, Pad: 0}, qnn.ActNone, 1.0/8, 17),
				},
				ActBits: 4,
			},
			qnn.QSeq{
				tinyConv(coeffenc.FCShape(4*3*3, 4), qnn.ActNone, 1.0/8, 18),
			},
		},
	}
	x := randInput(1, 6, 6, 7, 19)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 3)
}

func TestEngineRejectsOversizedAccumulator(t *testing.T) {
	e := testEngine(t)
	c := tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 20)
	c.MaxAcc = 5000 // exceeds t/2 = 128
	net := &qnn.QNetwork{
		Name: "bad", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			c,
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 21),
		}},
	}
	if _, err := e.Infer(net, randInput(1, 6, 6, 7, 22)); err == nil {
		t.Fatal("oversized accumulator bound accepted")
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "tiny", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActNone, 1.0/16, 23),
		}},
	}
	if _, err := e.Infer(net, randInput(2, 6, 6, 7, 24)); err == nil {
		t.Fatal("wrong input shape accepted")
	}
	if _, err := e.Infer(&qnn.QNetwork{}, randInput(1, 6, 6, 7, 25)); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestParamsDerivations(t *testing.T) {
	p := FullParams()
	if p.QMid() != 65537<<12 {
		t.Fatal("QMid wrong")
	}
	// Table 1's Athena row: 2^15 degree, 12 limbs -> 6 MB ciphertext
	// (paper reports 5.6 MB with 60-bit limbs stored packed).
	if b := p.CiphertextBytes(); b != 2*32768*12*8 {
		t.Fatalf("ciphertext bytes %d", b)
	}
	bp, err := p.BFVParameters()
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Qi) != 12 {
		t.Fatal("limb count wrong")
	}
}

// TestFlattenIntoDenseExact is the regression test for the conv→FC
// flatten: a deterministic edge-detector + position-selective dense
// readout must reproduce the plaintext values exactly (the final remap
// divides e_ms away). This catches any misrouting of labeled LWE values
// between feature-map and flattened coordinates.
func TestFlattenIntoDenseExact(t *testing.T) {
	e := testEngine(t)
	conv := &qnn.QConv{
		Shape: coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1},
		Weights: [][][][]int64{{{
			{0, -1, 0},
			{-1, 4, -1},
			{0, -1, 0},
		}}},
		Bias: []int64{0}, Act: qnn.ActReLU, Multiplier: 0.25, ActBits: 4, MaxAcc: 120,
	}
	dense := &qnn.QConv{
		Shape:   coeffenc.FCShape(36, 2),
		Weights: make([][][][]int64, 2),
		Bias:    []int64{0, 0}, Act: qnn.ActNone, Multiplier: 0.25, ActBits: 4,
		IsDense: true, MaxAcc: 120,
	}
	for o := 0; o < 2; o++ {
		dense.Weights[o] = make([][][]int64, 36)
		for i := 0; i < 36; i++ {
			w := int64(0)
			if (i/6 < 3) == (o == 0) {
				w = 1
			}
			dense.Weights[o][i] = [][]int64{{w}}
		}
	}
	net := &qnn.QNetwork{
		Name: "flatten", InC: 1, InH: 6, InW: 6, WBits: 3, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{conv, dense}},
	}
	x := qnn.NewIntTensor(1, 6, 6)
	x.Set(0, 1, 2, 7)
	x.Set(0, 1, 3, 7)
	want := net.ForwardInt(x).Data
	if want[0] == 0 || want[0] == want[1] {
		t.Fatalf("test vector degenerate: %v", want)
	}
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 1)
	if got[0] <= got[1] {
		t.Fatalf("top-half activation not detected: %v", got)
	}
}

func TestSoftmaxEncrypted(t *testing.T) {
	e := testEngine(t)
	cfg := e.DefaultSoftmaxConfig(4)
	logits := []int64{6, 2, -1, -5}
	got, err := e.SoftmaxEncrypted(logits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := SoftmaxPlain(logits, cfg)
	for i := range got {
		d := got[i] - want[i]
		if d < 0 {
			d = -d
		}
		// At t=257 the conversion noise is large relative to the scaled
		// exponentials; the demo tolerance is correspondingly loose.
		if d > 0.25 {
			t.Fatalf("class %d: encrypted %.3f vs plaintext %.3f\ngot:  %v\nwant: %v",
				i, got[i], want[i], got, want)
		}
	}
	// The dominant class must survive encryption.
	if qnn.Argmax(got) != 0 {
		t.Fatalf("softmax argmax lost: %v", got)
	}
	// Input validation.
	if _, err := e.SoftmaxEncrypted([]int64{1, 2}, cfg); err == nil {
		t.Fatal("wrong class count accepted")
	}
	if _, err := e.SoftmaxEncrypted([]int64{100, 0, 0, 0}, cfg); err == nil {
		t.Fatal("out-of-range logit accepted")
	}
}

// TestEncryptedSigmoidNetwork runs a sigmoid-activated network under
// encryption: the FBS LUT carries the exact sigmoid table ("Athena can
// accurately support any type of activation function").
func TestEncryptedSigmoidNetwork(t *testing.T) {
	e := testEngine(t)
	conv := tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActSigmoid, 0, 30)
	// Scales for the sigmoid dequant/requant path: accumulators up to
	// ~±60 dequantize to ±3, sigmoid output in (0,1) requantizes to
	// [0, 7] at OutScale 1/7.
	conv.InScale = 0.05
	conv.WScale = 1
	conv.OutScale = 1.0 / 7
	net := &qnn.QNetwork{
		Name: "sigmoid-net", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			conv,
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 31),
		}},
	}
	x := randInput(1, 6, 6, 7, 32)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, got, want, 2)
	// Sanity: the sigmoid remap is really non-linear (saturates).
	if conv.Remap(120) != conv.Remap(60)+conv.Remap(60) && conv.Remap(-120) == 0 {
		// expected saturation shape
	} else {
		t.Fatalf("sigmoid remap looks linear: f(120)=%d f(60)=%d f(-120)=%d",
			conv.Remap(120), conv.Remap(60), conv.Remap(-120))
	}
}

// TestEncryptedInferenceAtRealisticT runs the pipeline at the paper's
// plaintext modulus t = 65537 (full 2^16-entry LUT, 17-bit accumulator
// headroom, w7a7-style scales) on a reduced ring. This is the slowest
// single test in the repository — the FBS evaluates a degree-65536
// polynomial homomorphically.
func TestEncryptedInferenceAtRealisticT(t *testing.T) {
	if testing.Short() {
		t.Skip("full-t engine run is slow; run without -short")
	}
	p := Params{
		LogN: 11, QiBits: 55, QiNum: 12, T: 65537,
		LWEDim: 128, MidExp: 12, KSBase: 1 << 7, Seed: 2,
	}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	// conv(1->2, 3x3, pad 1, ReLU, w7a7 scales) -> dense(128 -> 4).
	rng := rand.New(rand.NewPCG(41, 42))
	mkW := func(cout, cin, k int, bound int64) [][][][]int64 {
		w := make([][][][]int64, cout)
		for co := range w {
			w[co] = make([][][]int64, cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, k)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, k)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.Uint64N(uint64(2*bound+1))) - bound
					}
				}
			}
		}
		return w
	}
	conv := &qnn.QConv{
		Shape:      coeffenc.ConvShape{H: 8, W: 8, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1},
		Weights:    mkW(2, 1, 3, 63), // 7-bit weights
		Bias:       []int64{5, -3},
		Act:        qnn.ActReLU,
		Multiplier: 1.0 / 512, // 17-bit accumulators -> 7-bit activations
		ActBits:    7,
		MaxAcc:     30000, // just inside t/2 (the Fig. 4 condition)
	}
	dense := &qnn.QConv{
		Shape:      coeffenc.FCShape(2*8*8, 4),
		Weights:    mkW(4, 128, 1, 7),
		Bias:       make([]int64, 4),
		Act:        qnn.ActNone,
		Multiplier: 1.0 / 64,
		ActBits:    7,
		IsDense:    true,
		MaxAcc:     30000,
	}
	net := &qnn.QNetwork{
		Name: "full-t", InC: 1, InH: 8, InW: 8, WBits: 7, ABits: 7, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{conv, dense}},
	}
	x := randInput(1, 8, 8, 63, 44)
	want := net.ForwardInt(x).Data
	got, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	// At t=65537 with multiplier 1/512 the e_ms error vanishes in the
	// remap; allow ±1 on the final logits.
	compareLogits(t, got, want, 1)
	t.Logf("full-t inference stats: %+v", e.Stats)
}

// The three-phase client/server API must agree with the one-shot Infer
// and enforce its boundaries.
func TestThreePhaseSession(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "session", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 61),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 62),
		}},
	}
	x := randInput(1, 6, 6, 7, 63)

	in, err := e.EncryptInput(net, x)
	if err != nil {
		t.Fatal(err)
	}
	if in.Size() < 1 {
		t.Fatal("no input ciphertexts")
	}
	out, err := e.EvaluateEncrypted(net, in)
	if err != nil {
		t.Fatal(err)
	}
	logits, err := e.DecryptLogits(out)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits {
		d := logits[i] - oneShot[i]
		if d < -2 || d > 2 {
			t.Fatalf("session and one-shot disagree beyond noise: %v vs %v", logits, oneShot)
		}
	}
	// Model mismatch must be rejected.
	other := &qnn.QNetwork{Name: "other", Blocks: net.Blocks, InC: 1, InH: 6, InW: 6, ABits: 4}
	if _, err := e.EvaluateEncrypted(other, in); err == nil {
		t.Fatal("model mismatch accepted")
	}
	if _, err := e.DecryptLogits(nil); err == nil {
		t.Fatal("nil logits accepted")
	}
}

// The wire formats of the client/server boundary must round-trip and the
// full serialize → evaluate → serialize → decrypt chain must agree with
// in-memory inference.
func TestSessionWireRoundTrip(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "wire", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 71),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 72),
		}},
	}
	x := randInput(1, 6, 6, 7, 73)
	in, err := e.EncryptInput(net, x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteEncryptedInput(in, &buf); err != nil {
		t.Fatal(err)
	}
	in2, err := e.ReadEncryptedInput(net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.EvaluateEncrypted(net, in2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := e.WriteEncryptedLogits(out, &buf); err != nil {
		t.Fatal(err)
	}
	out2, err := e.ReadEncryptedLogits(net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	logits, err := e.DecryptLogits(out2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits {
		d := logits[i] - direct[i]
		if d < -2 || d > 2 {
			t.Fatalf("wire path disagrees: %v vs %v", logits, direct)
		}
	}
	// Wrong model must be rejected on both directions.
	other := &qnn.QNetwork{Name: "nope", Blocks: net.Blocks, InC: 1, InH: 6, InW: 6, ABits: 4}
	buf.Reset()
	if err := e.WriteEncryptedInput(in, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadEncryptedInput(other, &buf); err == nil {
		t.Fatal("model mismatch accepted on input")
	}
}

func TestEngineRejectsUnsupportedBlocks(t *testing.T) {
	e := testEngine(t)
	// A residual block as the first block is unsupported.
	net := &qnn.QNetwork{
		Name: "res-first", InC: 1, InH: 6, InW: 6, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{&qnn.QResidual{ActBits: 4}},
	}
	if _, err := e.Infer(net, randInput(1, 6, 6, 7, 91)); err == nil {
		t.Fatal("residual-first network accepted")
	}
	// Pooling inside a residual body is unsupported.
	net2 := &qnn.QNetwork{
		Name: "pool-in-res", InC: 1, InH: 6, InW: 6, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{
			qnn.QSeq{tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 92)},
			&qnn.QResidual{Body: qnn.QSeq{&qnn.QMaxPool{K: 2}}, ActBits: 4},
			qnn.QSeq{tinyConv(coeffenc.FCShape(2*3*3, 4), qnn.ActNone, 1.0/8, 93)},
		},
	}
	if _, err := e.Infer(net2, randInput(1, 6, 6, 7, 94)); err == nil {
		t.Fatal("pooling inside residual body accepted")
	}
}

func TestEngineDeterminism(t *testing.T) {
	// Two engines built from the same parameters must produce identical
	// encrypted bytes and identical results (the property the TCP demo
	// relies on for its shared-seed key setup).
	p := TestParams()
	e1, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	net := &qnn.QNetwork{
		Name: "det", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 95),
			tinyConv(coeffenc.FCShape(36, 4), qnn.ActNone, 1.0/8, 96),
		}},
	}
	x := randInput(1, 6, 6, 7, 97)
	in1, err := e1.EncryptInput(net, x)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := e1.WriteEncryptedInput(in1, &b1); err != nil {
		t.Fatal(err)
	}
	in2, err := e2.EncryptInput(net, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.WriteEncryptedInput(in2, &b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-seed engines produced different ciphertext bytes")
	}
	// Cross-engine evaluation: e2 evaluates what e1 encrypted.
	out, err := e2.EvaluateEncrypted(net, in1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e1.DecryptLogits(out)
	if err != nil {
		t.Fatal(err)
	}
	want := net.ForwardInt(x).Data
	for i := range got {
		d := got[i] - want[i]
		if d < -2 || d > 2 {
			t.Fatalf("cross-engine inference wrong: %v vs %v", got, want)
		}
	}
}

// InferBatch must agree with per-image inference while sharing FBS
// passes across the batch (fewer FBS calls than B independent runs).
func TestInferBatchSharesFBS(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "batch", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 81),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 82),
		}},
	}
	const batch = 3
	xs := make([]*qnn.IntTensor, batch)
	wants := make([][]int64, batch)
	for i := range xs {
		xs[i] = randInput(1, 6, 6, 7, uint64(83+i))
		wants[i] = net.ForwardInt(xs[i]).Data
	}

	// Per-image baseline FBS count.
	e.Stats = OpStats{}
	if _, err := e.Infer(net, xs[0]); err != nil {
		t.Fatal(err)
	}
	perImageFBS := e.Stats.FBSCalls

	e.Stats = OpStats{}
	got, err := e.InferBatch(net, xs)
	if err != nil {
		t.Fatal(err)
	}
	batchFBS := e.Stats.FBSCalls
	if batchFBS >= batch*perImageFBS {
		t.Fatalf("batched FBS calls %d not below %d (=%d images × %d)",
			batchFBS, batch*perImageFBS, batch, perImageFBS)
	}
	for i := range got {
		// The shared-materialization path adds one conversion round, so
		// allow slightly wider e_ms tolerance than single-image runs.
		for j := range got[i] {
			d := got[i][j] - wants[i][j]
			if d < -3 || d > 3 {
				t.Fatalf("image %d logits %v vs plaintext %v", i, got[i], wants[i])
			}
		}
	}
	t.Logf("FBS calls: %d batched vs %d per-image x %d", batchFBS, perImageFBS, batch)

	if _, err := e.InferBatch(net, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
