package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"athena/internal/bfv"
	"athena/internal/lwe"
	"athena/internal/pack"
)

// Evaluation-key material: everything the server side of a deployment
// needs to run EvaluateEncrypted / EvaluateEncryptedBatch, and nothing
// it must not hold. The client generates all keys (NewEngine), exports
// this bundle once (WriteEvalKeys), and the server reconstructs an
// evaluation-only engine from it (NewEvaluationEngine). The bundle is
// public material by construction: BFV evaluation keys, the baby-step
// packing keys (encryptions of the LWE secret), and the N→n LWE
// keyswitching key.

const (
	evalKeysMagic   = 0x4145564b // "AEVK"
	evalKeysVersion = 1
)

// EvalKeys bundles the public evaluation material of one key owner.
type EvalKeys struct {
	KeySet   *bfv.KeySet
	PackDim  int               // LWE dimension n of the packing keys
	PackKeys []*bfv.Ciphertext // baby-step packing keys (see pack.NewPackerFromKeys)
	KSK      *lwe.KeySwitchKey
}

// EvalKeys exports the engine's public evaluation material. The engine
// must hold full key material (i.e. come from NewEngine).
func (e *Engine) EvalKeys() (*EvalKeys, error) {
	if e.ev == nil || e.packBabies == nil || e.ksk == nil {
		return nil, fmt.Errorf("core: engine holds no evaluation keys")
	}
	// packBabies holds the full-level keys; the working packer may run at
	// the reduced FBS level, but the wire always carries the full chain.
	return &EvalKeys{KeySet: e.ev.Keys(), PackDim: e.packN, PackKeys: e.packBabies, KSK: e.ksk}, nil
}

// WriteEvalKeys serializes the engine's evaluation material: a header
// binding the parameter fingerprint, then the BFV key set, the packing
// keys, and the LWE keyswitching key, each in its own wire format. The
// encoding is deterministic, so re-serializing the same keys yields the
// same bytes (the serving layer derives session identity from them).
func (e *Engine) WriteEvalKeys(w io.Writer) error {
	ek, err := e.EvalKeys()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var b [8]byte
	for _, v := range []uint64{evalKeysMagic, evalKeysVersion,
		uint64(e.P.LogN), uint64(len(e.Ctx.Params.Qi)), e.P.T, uint64(ek.PackDim)} {
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := e.Ctx.WriteKeySet(ek.KeySet, w); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b[:], uint64(len(ek.PackKeys)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for _, ct := range ek.PackKeys {
		if err := e.Ctx.WriteCiphertext(ct, w); err != nil {
			return err
		}
	}
	return lwe.WriteKeySwitchKey(ek.KSK, w)
}

// EvalKeyCodec decodes evaluation-key bundles for one fixed parameter
// set. Building the codec validates the (trusted, server-local) params
// once; ReadEvalKeys then only parses and validates untrusted bytes —
// the split keeps the wire-facing path free of construction invariants.
// A codec is safe for concurrent use.
type EvalKeyCodec struct {
	e *Engine // parameter shell: context and params, no keys
}

// NewEvalKeyCodec builds a decoder for bundles at params p.
func NewEvalKeyCodec(p Params) (*EvalKeyCodec, error) {
	e, err := newEngineShell(p)
	if err != nil {
		return nil, err
	}
	return &EvalKeyCodec{e: e}, nil
}

// ReadEvalKeys deserializes an evaluation-key bundle. All length fields
// are bounded and every coefficient is range-checked by the underlying
// decoders, so malformed input surfaces as an error, never a panic.
func (c *EvalKeyCodec) ReadEvalKeys(r io.Reader) (*EvalKeys, error) {
	return c.e.readEvalKeys(r)
}

// evalKeyChunk bounds one section read of a random-access bundle: a
// 300 MB key file streams through the decoder in 1 MiB pieces instead
// of materializing a second full copy in memory.
const evalKeyChunk = 1 << 20

// ReadEvalKeysAt decodes a bundle from random-access storage (a spilled
// segment entry, a mapped file) in bounded chunks. The decoder pulls
// sections on demand, so the bundle never lives twice in memory, and a
// read that fails with no progress is retried once at the same offset
// before the error propagates — a partial read simply resumes at the
// advanced offset on the next pull.
func (c *EvalKeyCodec) ReadEvalKeysAt(ra io.ReaderAt, size int64) (*EvalKeys, error) {
	if size < 0 {
		return nil, fmt.Errorf("core: negative eval-keys size %d", size)
	}
	return c.e.readEvalKeys(&chunkedReaderAt{ra: ra, size: size})
}

// chunkedReaderAt adapts an io.ReaderAt into the sequential reader the
// bundle decoder wants, with bounded section size and one same-offset
// retry. It tracks its own offset, so every Read is independently
// addressed — a transient failure never desynchronizes the stream.
type chunkedReaderAt struct {
	ra   io.ReaderAt
	size int64
	off  int64
}

func (r *chunkedReaderAt) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if want > evalKeyChunk {
		want = evalKeyChunk
	}
	if rem := r.size - r.off; rem < want {
		want = rem
	}
	n, err := r.ra.ReadAt(p[:want], r.off)
	if n == 0 && err != nil {
		// One retry at the same offset: the read made no progress, so
		// reissuing it is exact resumption.
		n, err = r.ra.ReadAt(p[:want], r.off)
	}
	r.off += int64(n)
	if n > 0 {
		// Progress swallows the error; the next Read resumes at the
		// advanced offset and re-surfaces a persistent failure there.
		return n, nil
	}
	return 0, err
}

func (e *Engine) readEvalKeys(r io.Reader) (*EvalKeys, error) {
	br := bufio.NewReader(r)
	var b [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	var hdr [6]uint64
	for i := range hdr {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("core: eval keys header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[0] != evalKeysMagic {
		return nil, fmt.Errorf("core: bad eval-keys magic %#x", hdr[0])
	}
	if hdr[1] != evalKeysVersion {
		return nil, fmt.Errorf("core: unsupported eval-keys version %d", hdr[1])
	}
	if int(hdr[2]) != e.P.LogN || int(hdr[3]) != len(e.Ctx.Params.Qi) ||
		hdr[4] != e.P.T || int(hdr[5]) != e.P.LWEDim {
		return nil, fmt.Errorf("core: eval keys for logN=%d limbs=%d t=%d n=%d, engine expects logN=%d limbs=%d t=%d n=%d",
			hdr[2], hdr[3], hdr[4], hdr[5], e.P.LogN, len(e.Ctx.Params.Qi), e.P.T, e.P.LWEDim)
	}
	ks, err := e.Ctx.ReadKeySet(br)
	if err != nil {
		return nil, fmt.Errorf("core: eval keys: %w", err)
	}
	nb, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("core: eval keys: %w", err)
	}
	want := pack.BabySteps(e.P.LWEDim)
	if int(nb) != want {
		return nil, fmt.Errorf("core: %d packing keys, dimension %d needs %d", nb, e.P.LWEDim, want)
	}
	babies := make([]*bfv.Ciphertext, nb)
	for i := range babies {
		ct, err := e.Ctx.ReadCiphertext(br)
		if err != nil {
			return nil, fmt.Errorf("core: packing key %d: %w", i, err)
		}
		babies[i] = ct
	}
	ksk, err := lwe.ReadKeySwitchKey(br)
	if err != nil {
		return nil, fmt.Errorf("core: eval keys: %w", err)
	}
	ek := &EvalKeys{KeySet: ks, PackDim: e.P.LWEDim, PackKeys: babies, KSK: ksk}
	if err := e.validateEvalKeys(ek); err != nil {
		return nil, err
	}
	return ek, nil
}

// validateEvalKeys checks the bundle's cross-component consistency
// against the engine parameters, so a bad upload fails at session open
// rather than mid-inference.
func (e *Engine) validateEvalKeys(ek *EvalKeys) error {
	if ek.KeySet == nil || ek.KeySet.Relin == nil {
		return fmt.Errorf("core: eval keys missing relinearization key")
	}
	if ek.KSK.Q != e.P.QMid() {
		return fmt.Errorf("core: keyswitch key at modulus %d, engine expects qMid=%d", ek.KSK.Q, e.P.QMid())
	}
	if len(ek.KSK.Keys) != e.Ctx.N {
		return fmt.Errorf("core: keyswitch key covers %d ring coefficients, engine expects %d", len(ek.KSK.Keys), e.Ctx.N)
	}
	if len(ek.KSK.Keys) > 0 && len(ek.KSK.Keys[0]) > 0 && len(ek.KSK.Keys[0][0].A) != e.P.LWEDim {
		return fmt.Errorf("core: keyswitch key targets dimension %d, engine expects %d", len(ek.KSK.Keys[0][0].A), e.P.LWEDim)
	}
	return nil
}

// NewEvaluationEngine builds a server-side engine from uploaded
// evaluation material: it can run EvaluateEncrypted and
// EvaluateEncryptedBatch but holds no secret or encryption keys —
// EncryptInput and DecryptLogits return ErrNoSecretKey.
func NewEvaluationEngine(p Params, ek *EvalKeys) (*Engine, error) {
	e, err := newEngineShell(p)
	if err != nil {
		return nil, err
	}
	if err := e.validateEvalKeys(ek); err != nil {
		return nil, err
	}
	if ek.PackDim != p.LWEDim {
		return nil, fmt.Errorf("core: packing keys for dimension %d, params say %d", ek.PackDim, p.LWEDim)
	}
	e.packN, e.packBabies = ek.PackDim, ek.PackKeys
	if err := e.buildPacker(); err != nil {
		return nil, err
	}
	e.s2c, err = pack.CompileTransform(e.ctxP, pack.S2CMatrix(e.ctxP))
	if err != nil {
		return nil, err
	}
	// The packing and S2C rotations are the engine's only automorphism
	// consumers; verify the uploaded set covers them up front.
	for _, g := range pack.DedupGalois(e.packer.GaloisElements(), e.s2c.GaloisElements()) {
		if _, ok := ek.KeySet.Galois[g]; !ok {
			return nil, fmt.Errorf("core: eval keys missing galois element %d", g)
		}
	}
	e.ksk = ek.KSK
	e.finish(ek.KeySet)
	return e, nil
}

// NewEvaluationEngineFromReader is the one-shot server-side path:
// decode an uploaded bundle and stand up the evaluation-only engine.
func NewEvaluationEngineFromReader(p Params, r io.Reader) (*Engine, error) {
	c, err := NewEvalKeyCodec(p)
	if err != nil {
		return nil, err
	}
	ek, err := c.ReadEvalKeys(r)
	if err != nil {
		return nil, err
	}
	return NewEvaluationEngine(p, ek)
}

// ErrNoSecretKey reports a client-side operation attempted on an
// evaluation-only engine.
var ErrNoSecretKey = fmt.Errorf("core: engine holds evaluation keys only (no secret key)")
