package core

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/lwe"
	"athena/internal/qnn"
)

// InferBatch runs the same network on B inputs, sharing the functional
// bootstrapping across the batch: the pending activations of all images
// are packed together (the FBS slot capacity usually dwarfs one image's
// layer), so the dominant FBS cost is paid once per ⌈values·B/N⌉ groups
// instead of once per image. This realizes the throughput side of the
// paper's "batch processing of precise non-linear functions".
//
// Linear layers and conversions still run per image (they are the cheap
// ~2% of the pipeline); after each shared FBS round the activations are
// redistributed to their images as LWE values, and each image's next
// convolution consumes them with an identity (FBS-free) packing pass.
func (e *Engine) InferBatch(q *qnn.QNetwork, xs []*qnn.IntTensor) ([][]int64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	e.netABits = q.ABits
	if e.netABits < 2 {
		e.netABits = 8
	}
	states := make([]*inferState, len(xs))
	for i, x := range xs {
		st, err := e.encryptInput(q, x)
		if err != nil {
			return nil, fmt.Errorf("core: input %d: %w", i, err)
		}
		states[i] = st
	}

	finals := make([]*finalResult, len(xs))
	for bi, b := range q.Blocks {
		last := bi == len(q.Blocks)-1
		seq, ok := b.(qnn.QSeq)
		if !ok {
			// Residual blocks fall back to per-image evaluation (their
			// joins interleave linear and non-linear work image-locally).
			for i := range states {
				st, err := e.residualBlock(b.(*qnn.QResidual), states[i])
				if err != nil {
					return nil, err
				}
				states[i] = st
			}
			continue
		}
		for oi, op := range seq {
			lastOp := last && oi == len(seq)-1
			// Shared materialization: when every image carries the same
			// pending LUT, apply it across the batch in shared packs.
			if _, isConv := op.(*qnn.QConv); isConv && states[0].vs != nil && states[0].vs.pending != nil {
				if err := e.materializeBatch(states); err != nil {
					return nil, err
				}
			}
			for i := range states {
				st, err := e.applyOp(op, states[i], lastOp)
				if err != nil {
					return nil, err
				}
				states[i] = st
				if lastOp {
					finals[i] = e.final
					e.final = nil
				}
			}
		}
	}

	out := make([][]int64, len(xs))
	for i := range finals {
		if finals[i] == nil {
			return nil, errNoFinal
		}
		logits, err := e.DecryptLogits(&EncryptedLogits{model: q.Name, final: finals[i]})
		if err != nil {
			return nil, err
		}
		out[i] = logits
	}
	return out, nil
}

// materializeBatch applies the (shared) pending LUT of all images'
// value sets using packs filled across the batch, then replaces each
// image's valSet with its materialized (identity-pending) values.
func (e *Engine) materializeBatch(states []*inferState) error {
	type slot struct {
		img int
		key vkey
	}
	var order []slot
	var ordered []lwe.Ciphertext
	pending := states[0].vs.pending
	for i, st := range states {
		if st.vs == nil || st.vs.pending != pending {
			return fmt.Errorf("core: batch images diverged at materialization")
		}
		for _, k := range sortedKeys(st.vs) {
			order = append(order, slot{img: i, key: k})
			ordered = append(ordered, st.vs.vals[k])
		}
	}
	results := make([]lwe.Ciphertext, len(ordered))
	for start := 0; start < len(ordered); start += e.Ctx.N {
		end := start + e.Ctx.N
		if end > len(ordered) {
			end = len(ordered)
		}
		validity := make([]bool, end-start)
		for i := range validity {
			validity[i] = true
		}
		ct, err := e.packFBS(ordered[start:end], pending, e.slotMask(validity))
		if err != nil {
			return err
		}
		ct, err = e.toCoeffs(ct)
		if err != nil {
			return err
		}
		m, err := e.extractFlat(ct, end-start)
		if err != nil {
			return err
		}
		copy(results[start:end], m)
	}
	// Redistribute.
	fresh := make([]map[vkey]lwe.Ciphertext, len(states))
	for i, st := range states {
		fresh[i] = make(map[vkey]lwe.Ciphertext, len(st.vs.vals))
	}
	for idx, s := range order {
		fresh[s.img][s.key] = results[idx]
	}
	for i, st := range states {
		states[i] = &inferState{vs: &valSet{
			C: st.vs.C, H: st.vs.H, W: st.vs.W, vals: fresh[i],
		}}
	}
	return nil
}

// extractFlat extracts coefficients 0..count-1 of ct as LWE values in
// positional order.
func (e *Engine) extractFlat(ct *bfv.Ciphertext, count int) ([]lwe.Ciphertext, error) {
	entries := make([]coeffenc.ValidEntry, count)
	for i := range entries {
		entries[i] = coeffenc.ValidEntry{Coeff: i, Cout: 0, Y: 0, X: i}
	}
	m, err := e.extract(ct, entries)
	if err != nil {
		return nil, err
	}
	out := make([]lwe.Ciphertext, count)
	for i := 0; i < count; i++ {
		out[i] = m[vkey{0, 0, i}]
	}
	return out, nil
}
