package core

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/lwe"
	"athena/internal/par"
	"athena/internal/qnn"
)

// InferBatch runs the same network on B inputs, sharing the functional
// bootstrapping across the batch: the pending activations of all images
// are packed together (the FBS slot capacity usually dwarfs one image's
// layer), so the dominant FBS cost is paid once per ⌈values·B/N⌉ groups
// instead of once per image. This realizes the throughput side of the
// paper's "batch processing of precise non-linear functions".
//
// Linear layers and conversions run per image between the shared FBS
// barriers, fanned out across the engine's worker lanes (each image's
// state is independent there); after each shared FBS round the
// activations are redistributed to their images as LWE values, and each
// image's next convolution consumes them with an identity (FBS-free)
// packing pass.
func (e *Engine) InferBatch(q *qnn.QNetwork, xs []*qnn.IntTensor) ([][]int64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	// Encryption stays serial: it consumes the engine's PRNG stream, and
	// the ciphertext bytes must not depend on scheduling.
	states := make([]*inferState, len(xs))
	for i, x := range xs {
		st, err := e.encryptInput(q, x)
		if err != nil {
			return nil, fmt.Errorf("core: input %d: %w", i, err)
		}
		states[i] = st
	}
	if err := e.evaluateStates(q, states); err != nil {
		return nil, err
	}

	out := make([][]int64, len(xs))
	for i := range states {
		if states[i] == nil || states[i].final == nil {
			return nil, errNoFinal
		}
		logits, err := e.DecryptLogits(&EncryptedLogits{model: q.Name, final: states[i].final})
		if err != nil {
			return nil, err
		}
		out[i] = logits
	}
	return out, nil
}

// EvaluateEncryptedBatch is the server-side batching entry point: it
// runs the network over a batch of independently encrypted inputs
// (all under this engine's keys), sharing the functional-bootstrapping
// rounds across the batch exactly as InferBatch does, and returns one
// encrypted logits bundle per input, in order. Only public evaluation
// material is used, so it works on evaluation-only engines.
func (e *Engine) EvaluateEncryptedBatch(q *qnn.QNetwork, ins []*EncryptedInput) ([]*EncryptedLogits, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	states := make([]*inferState, len(ins))
	for i, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("core: input %d is nil", i)
		}
		if in.model != q.Name {
			return nil, fmt.Errorf("core: input %d encrypted for model %q, evaluating %q", i, in.model, q.Name)
		}
		states[i] = &inferState{firstInputs: in.inputs, firstPlan: in.plan}
	}
	if err := e.evaluateStates(q, states); err != nil {
		return nil, err
	}
	out := make([]*EncryptedLogits, len(ins))
	for i, st := range states {
		if st == nil || st.final == nil {
			return nil, errNoFinal
		}
		out[i] = &EncryptedLogits{model: q.Name, final: st.final}
	}
	return out, nil
}

// evaluateStates drives the shared-FBS batch loop over prepared
// per-image states: per-image linear work fans out across the worker
// lanes, and pending activations of all images are applied together in
// shared packs at each FBS barrier.
func (e *Engine) evaluateStates(q *qnn.QNetwork, states []*inferState) error {
	defer e.flushStats()
	e.netABits = q.ABits
	if e.netABits < 2 {
		e.netABits = 8
	}
	// Per-image work fans out across the worker group; every image is a
	// heavy item (at least one linear layer), so no cost floor applies.
	imgOpts := par.Options{MinGrain: 1}
	for bi, b := range q.Blocks {
		last := bi == len(q.Blocks)-1
		seq, ok := b.(qnn.QSeq)
		if !ok {
			// Residual blocks fall back to per-image evaluation (their
			// joins interleave linear and non-linear work image-locally).
			r, ok := b.(*qnn.QResidual)
			if !ok {
				return fmt.Errorf("core: unsupported block %T", b)
			}
			errs := make([]error, len(states))
			e.w0.forEach(len(states), imgOpts, func(ln *evalWorker, i int) {
				st, err := ln.residualBlock(r, states[i])
				if err != nil {
					errs[i] = err
					return
				}
				states[i] = st
			})
			if err := firstErr(errs); err != nil {
				return err
			}
			continue
		}
		for oi, op := range seq {
			lastOp := last && oi == len(seq)-1
			// Shared materialization: when every image carries the same
			// pending LUT, apply it across the batch in shared packs.
			// This is the batch's FBS barrier; the per-image loop below
			// resumes fan-out once it completes.
			if _, isConv := op.(*qnn.QConv); isConv && states[0].vs != nil && states[0].vs.pending != nil {
				if err := e.w0.materializeBatch(states); err != nil {
					return err
				}
			}
			errs := make([]error, len(states))
			e.w0.forEach(len(states), imgOpts, func(ln *evalWorker, i int) {
				st, err := ln.applyOp(op, states[i], lastOp)
				if err != nil {
					errs[i] = err
					return
				}
				states[i] = st
			})
			if err := firstErr(errs); err != nil {
				return err
			}
		}
	}
	return nil
}

// materializeBatch applies the (shared) pending LUT of all images'
// value sets using packs filled across the batch, then replaces each
// image's valSet with its materialized (identity-pending) values. The
// slot-capacity chunks are independent bootstrapping rounds and fan out
// across worker lanes; the slot order is fixed by (image, sorted key),
// so the redistribution is scheduling-independent.
func (wk *evalWorker) materializeBatch(states []*inferState) error {
	e := wk.e
	type slot struct {
		img int
		key vkey
	}
	var order []slot
	var ordered []lwe.Ciphertext
	pending := states[0].vs.pending
	for i, st := range states {
		if st.vs == nil || st.vs.pending != pending {
			return fmt.Errorf("core: batch images diverged at materialization")
		}
		for _, k := range sortedKeys(st.vs) {
			order = append(order, slot{img: i, key: k})
			ordered = append(ordered, st.vs.vals[k])
		}
	}
	results := make([]lwe.Ciphertext, len(ordered))
	n := e.Ctx.N
	chunks := (len(ordered) + n - 1) / n
	errs := make([]error, chunks)
	wk.forEach(chunks, par.Options{MinGrain: 1}, func(ln *evalWorker, ci int) {
		start := ci * n
		end := start + n
		if end > len(ordered) {
			end = len(ordered)
		}
		validity := make([]bool, end-start)
		for i := range validity {
			validity[i] = true
		}
		ct, err := ln.packFBS(ordered[start:end], pending, e.slotMask(validity))
		if err != nil {
			errs[ci] = err
			return
		}
		ct, err = ln.toCoeffs(ct)
		if err != nil {
			errs[ci] = err
			return
		}
		m, err := ln.extractFlat(ct, end-start)
		if err != nil {
			errs[ci] = err
			return
		}
		copy(results[start:end], m)
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	// Redistribute.
	fresh := make([]map[vkey]lwe.Ciphertext, len(states))
	for i, st := range states {
		fresh[i] = make(map[vkey]lwe.Ciphertext, len(st.vs.vals))
	}
	for idx, s := range order {
		fresh[s.img][s.key] = results[idx]
	}
	for i, st := range states {
		states[i] = &inferState{vs: &valSet{
			C: st.vs.C, H: st.vs.H, W: st.vs.W, vals: fresh[i],
		}}
	}
	return nil
}

// extractFlat extracts coefficients 0..count-1 of ct as LWE values in
// positional order.
func (wk *evalWorker) extractFlat(ct *bfv.Ciphertext, count int) ([]lwe.Ciphertext, error) {
	entries := make([]coeffenc.ValidEntry, count)
	for i := range entries {
		entries[i] = coeffenc.ValidEntry{Coeff: i, Cout: 0, Y: 0, X: i}
	}
	m, err := wk.extract(ct, entries)
	if err != nil {
		return nil, err
	}
	out := make([]lwe.Ciphertext, count)
	for i := 0; i < count; i++ {
		out[i] = m[vkey{0, 0, i}]
	}
	return out, nil
}
