package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// Wire formats for the client/server boundary: an EncryptedInput travels
// client → server, an EncryptedLogits travels back. Both sides must hold
// the same network description (by name) and engine parameters; the
// ciphertext payloads reuse the bfv wire format.

const (
	wireInputMagic  = 0x41494e31 // "AIN1"
	wireOutputMagic = 0x414f5531 // "AOU1"
)

func writeHeader(w *bufio.Writer, magic uint64, model string, count int) error {
	var b [8]byte
	for _, v := range []uint64{magic, uint64(len(model)), uint64(count)} {
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	_, err := w.WriteString(model)
	return err
}

func readHeader(r *bufio.Reader, magic uint64) (model string, count int, err error) {
	var b [8]byte
	read := func() (uint64, error) {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	m, err := read()
	if err != nil {
		return "", 0, err
	}
	if m != magic {
		return "", 0, fmt.Errorf("core: bad wire magic %#x", m)
	}
	nameLen, err := read()
	if err != nil {
		return "", 0, err
	}
	if nameLen > 1024 {
		return "", 0, fmt.Errorf("core: implausible model name length %d", nameLen)
	}
	cnt, err := read()
	if err != nil {
		return "", 0, err
	}
	if cnt > 1<<20 {
		return "", 0, fmt.Errorf("core: implausible ciphertext count %d", cnt)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", 0, err
	}
	return string(name), int(cnt), nil
}

// WriteEncryptedInput serializes the client's input bundle.
func (e *Engine) WriteEncryptedInput(in *EncryptedInput, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, wireInputMagic, in.model, len(in.inputs)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, ct := range in.inputs {
		if err := e.Ctx.WriteCiphertext(ct, w); err != nil {
			return err
		}
	}
	return nil
}

// ReadEncryptedInput deserializes an input bundle for network q,
// recomputing the layer plan from the network description.
func (e *Engine) ReadEncryptedInput(q *qnn.QNetwork, r io.Reader) (*EncryptedInput, error) {
	br := bufio.NewReader(r)
	model, count, err := readHeader(br, wireInputMagic)
	if err != nil {
		return nil, err
	}
	if model != q.Name {
		return nil, fmt.Errorf("core: input for model %q, expected %q", model, q.Name)
	}
	first, err := firstConv(q)
	if err != nil {
		return nil, err
	}
	plan, err := coeffenc.NewPlan(first.Shape, e.Ctx.N, coeffenc.AthenaOrder)
	if err != nil {
		return nil, err
	}
	if count != plan.InBatches {
		return nil, fmt.Errorf("core: %d input ciphertexts, plan expects %d", count, plan.InBatches)
	}
	inputs := make([]*bfv.Ciphertext, count)
	for i := range inputs {
		ct, err := e.Ctx.ReadCiphertext(br)
		if err != nil {
			return nil, err
		}
		inputs[i] = ct
	}
	return &EncryptedInput{model: model, inputs: inputs, plan: plan}, nil
}

// WriteEncryptedLogits serializes the server's result bundle.
func (e *Engine) WriteEncryptedLogits(out *EncryptedLogits, w io.Writer) error {
	if out == nil || out.final == nil {
		return errNoFinal
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, wireOutputMagic, out.model, len(out.final.accs)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, ct := range out.final.accs {
		if err := e.Ctx.WriteCiphertext(ct, w); err != nil {
			return err
		}
	}
	return nil
}

// ReadEncryptedLogits deserializes a result bundle for network q.
func (e *Engine) ReadEncryptedLogits(q *qnn.QNetwork, r io.Reader) (*EncryptedLogits, error) {
	br := bufio.NewReader(r)
	model, count, err := readHeader(br, wireOutputMagic)
	if err != nil {
		return nil, err
	}
	if model != q.Name {
		return nil, fmt.Errorf("core: logits for model %q, expected %q", model, q.Name)
	}
	last, err := lastConv(q)
	if err != nil {
		return nil, err
	}
	plan, err := coeffenc.NewPlan(last.Shape, e.Ctx.N, coeffenc.AthenaOrder)
	if err != nil {
		return nil, err
	}
	if count != plan.OutBatches {
		return nil, fmt.Errorf("core: %d result ciphertexts, plan expects %d", count, plan.OutBatches)
	}
	accs := make([]*bfv.Ciphertext, count)
	for i := range accs {
		ct, err := e.Ctx.ReadCiphertext(br)
		if err != nil {
			return nil, err
		}
		accs[i] = ct
	}
	return &EncryptedLogits{model: model, final: &finalResult{conv: last, plan: plan, accs: accs}}, nil
}

// lastConv returns the network's final linear layer.
func lastConv(q *qnn.QNetwork) (*qnn.QConv, error) {
	if len(q.Blocks) == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	seq, ok := q.Blocks[len(q.Blocks)-1].(qnn.QSeq)
	if !ok || len(seq) == 0 {
		return nil, fmt.Errorf("core: network must end with a QSeq")
	}
	c, ok := seq[len(seq)-1].(*qnn.QConv)
	if !ok {
		return nil, fmt.Errorf("core: network must end with a linear layer")
	}
	return c, nil
}
