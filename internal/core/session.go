package core

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// The three-phase inference API makes the client/server boundary
// explicit: the client encrypts its input and decrypts the result; the
// server evaluates the network on ciphertexts only. Engine.Infer remains
// as the convenience wrapper running all three phases.
//
//	enc, _ := engine.EncryptInput(net, x)        // client
//	out, _ := engine.EvaluateEncrypted(net, enc) // server (no secret key use)
//	logits, _ := engine.DecryptLogits(out)       // client

// EncryptedInput is the client's ciphertext bundle for one inference:
// the first linear layer's coefficient-encoded input ciphertexts.
type EncryptedInput struct {
	model  string
	inputs []*bfv.Ciphertext
	plan   *coeffenc.Plan
}

// Size returns the ciphertext count of the bundle.
func (in *EncryptedInput) Size() int { return len(in.inputs) }

// EncryptedLogits is the server's result bundle: the final layer's
// accumulator ciphertexts plus the plan metadata needed to read them.
type EncryptedLogits struct {
	model string
	final *finalResult
}

// EncryptInput encodes and encrypts the quantized input for the
// network's first linear layer (the client-side prologue).
func (e *Engine) EncryptInput(q *qnn.QNetwork, x *qnn.IntTensor) (*EncryptedInput, error) {
	if e.enc == nil {
		return nil, ErrNoSecretKey
	}
	st, err := e.encryptInput(q, x)
	if err != nil {
		return nil, err
	}
	return &EncryptedInput{model: q.Name, inputs: st.firstInputs, plan: st.firstPlan}, nil
}

// EvaluateEncrypted runs the network on the encrypted input and returns
// the encrypted logits. Only public material (evaluation keys, packing
// keys, LWE keyswitching keys) is used.
func (e *Engine) EvaluateEncrypted(q *qnn.QNetwork, in *EncryptedInput) (*EncryptedLogits, error) {
	if in.model != q.Name {
		return nil, fmt.Errorf("core: input encrypted for model %q, evaluating %q", in.model, q.Name)
	}
	defer e.flushStats()
	e.netABits = q.ABits
	if e.netABits < 2 {
		e.netABits = 8
	}
	state := &inferState{firstInputs: in.inputs, firstPlan: in.plan}
	var err error
	for bi, b := range q.Blocks {
		last := bi == len(q.Blocks)-1
		switch blk := b.(type) {
		case qnn.QSeq:
			for oi, op := range blk {
				lastOp := last && oi == len(blk)-1
				state, err = e.w0.applyOp(op, state, lastOp)
				if err != nil {
					return nil, err
				}
			}
		case *qnn.QResidual:
			state, err = e.w0.residualBlock(blk, state)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: unsupported block %T", b)
		}
	}
	if state == nil || state.final == nil {
		return nil, errNoFinal
	}
	return &EncryptedLogits{model: q.Name, final: state.final}, nil
}

// DecryptLogits recovers the output logits (the client-side epilogue:
// decryption plus the final remap in the clear).
func (e *Engine) DecryptLogits(out *EncryptedLogits) ([]int64, error) {
	if e.dec == nil {
		return nil, ErrNoSecretKey
	}
	if out == nil || out.final == nil {
		return nil, errNoFinal
	}
	f := out.final
	s := f.conv.Shape
	logits := make([]int64, s.Outputs())
	tm := e.Ctx.TMod
	for ob, acc := range f.accs {
		pt := e.dec.Decrypt(acc)
		for _, en := range f.plan.ValidCoeffs(ob) {
			v := tm.Centered(pt.Coeffs[en.Coeff])
			logits[(en.Cout*s.OutH()+en.Y)*s.OutW()+en.X] = f.conv.Remap(v)
		}
	}
	return logits, nil
}
