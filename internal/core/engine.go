package core

import (
	"fmt"
	"sort"
	"sync"

	"athena/internal/bfv"
	"athena/internal/coeffenc"
	"athena/internal/fbs"
	"athena/internal/lwe"
	"athena/internal/pack"
	"athena/internal/par"
	"athena/internal/qnn"
	"athena/internal/ring"
)

// Engine holds all key material and compiled transforms for running
// quantized networks under FHE. In a deployment the secret key and
// decryptor live with the client and everything else with the server;
// the engine keeps both sides for end-to-end evaluation.
type Engine struct {
	P   Params
	Ctx *bfv.Context

	// Level schedule (Params.Levels): ctxF is the FBS-level context the
	// packing and LUT ladders run under; ctxP is the post-level context
	// for everything after the LUT (masking, S2C, conv accumulation,
	// extraction). Either may alias Ctx when the schedule keeps the full
	// chain.
	ctxF *bfv.Context
	ctxP *bfv.Context

	sk   *bfv.SecretKey
	enc  *bfv.Encryptor
	dec  *bfv.Decryptor
	ev   *bfv.Evaluator // FBS-level evaluator (ctxF)
	evP  *bfv.Evaluator // post-level evaluator (ctxP)
	cod  *bfv.Encoder   // full-level encoder (client-side encode/decode)
	codP *bfv.Encoder   // post-level encoder (lifts for post-level products)

	lweSK  *lwe.SecretKey    // dimension n secret (client side)
	ksk    *lwe.KeySwitchKey // ring-degree -> n at qMid
	packer *pack.Packer      // working packer at ctxF (ModDown'd babies)
	s2c    *pack.Transform   // compiled at ctxP

	// Full-level packing keys as generated/received: the wire format
	// (EvalKeys) always carries full-chain babies, the working packer is
	// rebuilt at ctxF from them.
	packN      int
	packBabies []*bfv.Ciphertext

	luts  map[*qnn.QConv]*fbs.Evaluator
	relus map[int]*fbs.Evaluator // post-add ReLU-clamp by ActBits
	divs  map[int]*fbs.Evaluator // avg-pool divide by k²

	// lutMu guards the three LUT caches above: pooled lanes compile and
	// look up evaluators concurrently during batched inference.
	lutMu sync.Mutex

	// w0 is the top-level evaluation worker (wrapping e.ev); lanes holds
	// the ShallowCopy'd workers the operator-level fan-outs run on.
	w0    *evalWorker
	lanes *par.Pool[*evalWorker]

	tMod ring.Modulus // cached Barrett constants for the LWE arithmetic

	// netABits is the activation bit width of the network currently
	// being inferred (set by Infer; used to size pooling domains).
	netABits int

	// Stats accumulates operation counts over Infer calls.
	Stats OpStats
}

// OpStats counts homomorphic operations issued by the engine.
type OpStats struct {
	PMult, HAdd, CMult, SMult int
	Packs, FBSCalls, S2CCalls int
	Extractions, KeySwitches  int
	LWEAdds                   int
}

// NewEngine generates all key material for params.
func NewEngine(p Params) (*Engine, error) {
	e, err := newEngineShell(p)
	if err != nil {
		return nil, err
	}
	ctx := e.Ctx
	kg := bfv.NewKeyGenerator(ctx, p.Seed)
	e.sk = kg.GenSecretKey()
	pk := kg.GenPublicKey(e.sk)
	e.enc = bfv.NewEncryptor(ctx, pk, p.Seed^0xeac7)
	e.dec = bfv.NewDecryptor(ctx, e.sk)

	// LWE material: the ring secret's coefficient vector is the
	// extraction-side key; a fresh dimension-n key receives it.
	e.lweSK = lwe.NewSecretKey(p.LWEDim, p.Seed^0x17e)
	ringSK := &lwe.SecretKey{S: e.sk.Signed}
	e.ksk = lwe.NewKeySwitchKey(ringSK, e.lweSK, p.QMid(), p.KSBase, p.Sigma, p.Seed^0x55)

	// Packing keys are generated (and exported) at the full chain; the
	// working packer runs at the FBS level, so rebuild it from ModDown'd
	// babies.
	pkFull, err := pack.NewPacker(ctx, e.enc, e.lweSK)
	if err != nil {
		return nil, err
	}
	e.packN, e.packBabies = pkFull.Keys()
	if err := e.buildPacker(); err != nil {
		return nil, err
	}
	e.s2c, err = pack.CompileTransform(e.ctxP, pack.S2CMatrix(e.ctxP))
	if err != nil {
		return nil, err
	}

	els := pack.DedupGalois(e.packer.GaloisElements(), e.s2c.GaloisElements())
	keys := kg.GenKeySet(e.sk, els)
	e.finish(keys)
	return e, nil
}

// newEngineShell validates params and builds the keyless engine frame
// shared by the client-side (NewEngine) and server-side
// (NewEvaluationEngine) constructors.
func newEngineShell(p Params) (*Engine, error) {
	bp, err := p.BFVParameters()
	if err != nil {
		return nil, err
	}
	ctx, err := bfv.NewContext(bp)
	if err != nil {
		return nil, err
	}
	if !ctx.Batching() {
		return nil, fmt.Errorf("core: parameters do not support batching (t=%d, N=%d)", p.T, 1<<p.LogN)
	}
	if p.LWEDim > ctx.N/2 || (ctx.N/2)%p.LWEDim != 0 {
		return nil, fmt.Errorf("core: LWE dimension %d must divide N/2=%d", p.LWEDim, ctx.N/2)
	}
	e := &Engine{
		P:     p,
		Ctx:   ctx,
		luts:  make(map[*qnn.QConv]*fbs.Evaluator),
		relus: make(map[int]*fbs.Evaluator),
		divs:  make(map[int]*fbs.Evaluator),
	}
	fbsL, postL := p.Levels()
	if e.ctxF, err = ctx.AtLevel(fbsL); err != nil {
		return nil, fmt.Errorf("core: FBS level: %w", err)
	}
	if e.ctxP, err = ctx.AtLevel(postL); err != nil {
		return nil, fmt.Errorf("core: post level: %w", err)
	}
	e.tMod = ring.NewModulus(p.T)
	e.cod = bfv.NewEncoder(ctx)
	e.codP = bfv.NewEncoder(e.ctxP)
	return e, nil
}

// buildPacker constructs the working packer at the FBS level from the
// full-chain packing keys in packN/packBabies. At the full level the
// babies are used as-is; otherwise each is rescaled once at setup — the
// one-time cost that makes every subsequent Pack run on fewer limbs.
func (e *Engine) buildPacker() error {
	babies := e.packBabies
	if e.ctxF != e.Ctx {
		down := make([]*bfv.Ciphertext, len(babies))
		for i, b := range babies {
			var err error
			if down[i], err = e.Ctx.ModDown(b, e.ctxF.Level()); err != nil {
				return err
			}
		}
		babies = down
	}
	var err error
	e.packer, err = pack.NewPackerFromKeys(e.ctxF, e.packN, babies)
	return err
}

// finish installs the evaluation keys and builds the worker group; the
// packer, keyswitch key, and S2C transform must already be in place.
func (e *Engine) finish(keys *bfv.KeySet) {
	// Two evaluators per worker, one per schedule level; both read the
	// same full-chain key set (the ring kernels only touch the prefix
	// limbs of key polynomials, and reduced contexts carry the corrected
	// keyswitch digit constants).
	e.ev = bfv.NewEvaluator(e.ctxF, keys)
	e.evP = bfv.NewEvaluator(e.ctxP, keys)
	e.w0 = e.newWorker(e.ev, e.evP, e.codP, true)
	e.lanes = par.NewPool(func() *evalWorker {
		// newWorker only wraps the freshly forked evaluators and a brand-new
		// encoder in a per-lane struct; it reads no mutable Engine scratch,
		// and par.Pool serializes mk under its own mutex.
		//lint:allow scratchalias newWorker allocates per-lane state from a fresh ShallowCopy; no shared scratch is touched
		return e.newWorker(e.ev.ShallowCopy(), e.evP.ShallowCopy(), bfv.NewEncoder(e.ctxP), false)
	})
}

// vkey identifies one activation value in (channel, y, x) coordinates.
type vkey struct{ C, Y, X int }

// valSet is the inter-layer state: labeled LWE ciphertexts at modulus t
// carrying the previous layer's raw accumulators, with that layer's
// fused LUT still pending.
type valSet struct {
	C, H, W int
	vals    map[vkey]lwe.Ciphertext
	pending *fbs.Evaluator    // nil = values are already materialized
	fn      func(int64) int64 // plaintext shadow of pending (nil = identity)
}

func (e *Engine) zeroLWE() lwe.Ciphertext {
	return lwe.Ciphertext{A: make([]uint64, e.P.LWEDim), B: 0, Q: e.P.T}
}

// lutFor compiles (and caches) the FBS evaluator of a conv's fused remap.
func (e *Engine) lutFor(q *qnn.QConv) (*fbs.Evaluator, error) {
	e.lutMu.Lock()
	defer e.lutMu.Unlock()
	if ev, ok := e.luts[q]; ok {
		return ev, nil
	}
	if q.MaxAcc >= int64(e.P.T/2) {
		return nil, fmt.Errorf("core: %s accumulator bound %d exceeds t/2 = %d", q.OpName(), q.MaxAcc, e.P.T/2)
	}
	l := fbs.NewLUT(e.P.T, q.Remap)
	ev, err := fbs.NewEvaluator(e.ctxF, l)
	if err != nil {
		return nil, err
	}
	e.luts[q] = ev
	return ev, nil
}

func (e *Engine) reluClampFor(actBits int) (*fbs.Evaluator, error) {
	e.lutMu.Lock()
	defer e.lutMu.Unlock()
	if ev, ok := e.relus[actBits]; ok {
		return ev, nil
	}
	lim := int64(1)<<(actBits-1) - 1
	l := fbs.NewLUT(e.P.T, func(x int64) int64 {
		if x < 0 {
			return 0
		}
		if x > lim {
			return lim
		}
		return x
	})
	ev, err := fbs.NewEvaluator(e.ctxF, l)
	if err != nil {
		return nil, err
	}
	e.relus[actBits] = ev
	return ev, nil
}

func (e *Engine) divideFor(kk int) (*fbs.Evaluator, error) {
	e.lutMu.Lock()
	defer e.lutMu.Unlock()
	if ev, ok := e.divs[kk]; ok {
		return ev, nil
	}
	l := fbs.NewLUT(e.P.T, func(x int64) int64 { return roundDiv(x, int64(kk)) })
	ev, err := fbs.NewEvaluator(e.ctxF, l)
	if err != nil {
		return nil, err
	}
	e.divs[kk] = ev
	return ev, nil
}

func roundDiv(a, b int64) int64 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

// packFBS packs an ordered list of LWE values, applies the pending LUT
// (when non-nil), and returns the slot-encoded BFV ciphertext at full Q.
// mask, when non-nil, holds 1 at slots carrying real values and 0 at
// structural zeros (padding, unused slots); it is applied after the LUT
// because tables with LUT(0) ≠ 0 (sigmoid, GELU, biased remaps) would
// otherwise turn structural zeros into non-zero activations.
func (wk *evalWorker) packFBS(ordered []lwe.Ciphertext, pending *fbs.Evaluator, mask []int64) (*bfv.Ciphertext, error) {
	e := wk.e
	if len(ordered) > e.Ctx.N {
		return nil, fmt.Errorf("core: %d values exceed %d slots", len(ordered), e.Ctx.N)
	}
	ct, err := e.packer.PackWith(wk.ev, wk.packSc, ordered)
	if err != nil {
		return nil, err
	}
	wk.stats.Packs++
	var fe *fbs.Evaluator
	if pending != nil {
		fe = wk.fbsFor(pending)
		ct, err = fe.Evaluate(wk.ev, ct)
		if err != nil {
			return nil, err
		}
		wk.stats.FBSCalls++
		wk.stats.CMult += fe.CMults
		wk.stats.SMult += fe.SMults
		wk.stats.HAdd += fe.HAdds
	}
	// Drop to the post level: the LUT's multiplicative depth is spent, so
	// the mask product, S2C, the next layer's accumulation, and the final
	// rescale all run on PostLevel limbs instead of FBSLevel.
	ct, err = e.Ctx.ModDown(ct, e.ctxP.Level())
	if err != nil {
		return nil, err
	}
	if fe != nil && mask != nil {
		pm := wk.codP.LiftToMul(wk.codP.EncodeSlots(mask))
		ct = wk.evP.MulPlain(ct, pm)
		wk.stats.PMult++
	}
	return ct, nil
}

// slotMask builds the structural-zero mask for a group: 1 for the first
// `valid` of `total` slots (or per the explicit validity slice).
func (e *Engine) slotMask(validity []bool) []int64 {
	m := make([]int64, e.Ctx.N)
	for i, ok := range validity {
		if ok {
			m[i] = 1
		}
	}
	return m
}

// toCoeffs applies S2C: slot i -> coefficient i.
func (wk *evalWorker) toCoeffs(ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	out, err := wk.e.s2c.Apply(wk.evP, ct)
	if err != nil {
		return nil, err
	}
	wk.stats.S2CCalls++
	return out, nil
}

// extract converts valid coefficients of a result ciphertext into
// dimension-n LWE ciphertexts at modulus t (Steps ②–③).
func (wk *evalWorker) extract(ct *bfv.Ciphertext, entries []coeffenc.ValidEntry) (map[vkey]lwe.Ciphertext, error) {
	e := wk.e
	a, b, err := e.Ctx.SwitchModulus(ct, e.P.QMid())
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(entries))
	for i, en := range entries {
		idx[i] = en.Coeff
	}
	cts := lwe.SampleExtract(lwe.RLWE{A: a, B: b, Q: e.P.QMid()}, idx)
	wk.stats.Extractions += len(cts)
	wk.stats.KeySwitches += len(cts)
	switched := make([]lwe.Ciphertext, len(cts))
	// One dimension switch costs N·digits AXPYs of length n; making the
	// cost explicit lets tiny extractions stay inline while layer-sized
	// ones fan out across per-lane Switchers.
	cost := e.Ctx.N * e.ksk.Digits * e.P.LWEDim
	wk.forEach(len(cts), par.Options{MinGrain: 1, ItemCost: cost}, func(ln *evalWorker, i int) {
		switched[i] = lwe.ModSwitch(ln.sw.Switch(cts[i]), e.P.T)
	})
	out := make(map[vkey]lwe.Ciphertext, len(entries))
	for i, en := range entries {
		out[vkey{en.Cout, en.Y, en.X}] = switched[i]
	}
	return out, nil
}

// scaledEvaluator compiles the composition scale·fn (fn = identity when
// nil) into an FBS evaluator. Pooling runs its trees in a scaled domain
// so that the extraction noise e_ms, which lands at fixed absolute
// magnitude, is crushed by the divide folded into the consumer's LUT —
// the same remap-compression argument as Section 3.3.
func (e *Engine) scaledEvaluator(fn func(int64) int64, scale int64) (*fbs.Evaluator, error) {
	l := fbs.NewLUT(e.P.T, func(x int64) int64 {
		if fn != nil {
			x = fn(x)
		}
		return x * scale
	})
	return fbs.NewEvaluator(e.ctxF, l)
}

// poolScale picks the largest power-of-two domain scale such that
// maxVal·scale stays below t/2 with slack for accumulated tree noise.
func (e *Engine) poolScale(maxVal int64) int64 {
	limit := int64(e.P.T/2) - int64(e.P.T/16)
	s := int64(1)
	for maxVal*s*2 <= limit {
		s *= 2
	}
	return s
}

// materializeScaled applies pending (or identity) composed with a domain
// scale, returning LWE values carrying value·scale.
func (wk *evalWorker) materializeScaled(vs *valSet, scale int64) (*valSet, error) {
	if vs.pending != nil && vs.fn == nil {
		return nil, fmt.Errorf("core: pending LUT without plaintext shadow")
	}
	ev, err := wk.e.scaledEvaluator(vs.fn, scale)
	if err != nil {
		return nil, err
	}
	scaled := &valSet{C: vs.C, H: vs.H, W: vs.W, vals: vs.vals, pending: ev}
	out, err := wk.forceMaterialize(scaled)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// materialize applies the pending LUT of vs (if any), returning int8
// activations as LWE values (pack → FBS → S2C → extract).
func (wk *evalWorker) materialize(vs *valSet) (*valSet, error) {
	if vs.pending == nil {
		return vs, nil
	}
	return wk.forceMaterialize(vs)
}

// forceMaterialize runs pack → FBS → S2C → extract over the value set in
// slot-capacity chunks. Each chunk is a full bootstrapping round, so the
// chunks fan out across worker lanes; the chunk→key assignment is fixed
// by the sorted key order and the per-chunk maps are merged afterwards,
// keeping the result independent of scheduling.
func (wk *evalWorker) forceMaterialize(vs *valSet) (*valSet, error) {
	e := wk.e
	keys := sortedKeys(vs)
	n := e.Ctx.N
	chunks := (len(keys) + n - 1) / n
	maps := make([]map[vkey]lwe.Ciphertext, chunks)
	errs := make([]error, chunks)
	wk.forEach(chunks, par.Options{MinGrain: 1}, func(ln *evalWorker, ci int) {
		start := ci * n
		end := start + n
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[start:end]
		ordered := make([]lwe.Ciphertext, len(chunk))
		validity := make([]bool, len(chunk))
		for i, k := range chunk {
			ordered[i] = vs.vals[k]
			validity[i] = true
		}
		ct, err := ln.packFBS(ordered, vs.pending, e.slotMask(validity))
		if err != nil {
			errs[ci] = err
			return
		}
		ct, err = ln.toCoeffs(ct)
		if err != nil {
			errs[ci] = err
			return
		}
		entries := make([]coeffenc.ValidEntry, len(chunk))
		for i, k := range chunk {
			entries[i] = coeffenc.ValidEntry{Coeff: i, Cout: k.C, Y: k.Y, X: k.X}
		}
		maps[ci], errs[ci] = ln.extract(ct, entries)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := &valSet{C: vs.C, H: vs.H, W: vs.W, vals: make(map[vkey]lwe.Ciphertext, len(keys))}
	for _, m := range maps {
		for k, v := range m {
			out.vals[k] = v
		}
	}
	return out, nil
}

func sortedKeys(vs *valSet) []vkey {
	keys := make([]vkey, 0, len(vs.vals))
	for k := range vs.vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.C != b.C {
			return a.C < b.C
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return keys
}

// convInputs assembles, packs, FBS-processes, and S2C-converts the input
// ciphertexts of a conv plan from the labeled LWE values of vs. The
// input batches are independent bootstrapping rounds, so they fan out
// across worker lanes (the value map is only read).
func (wk *evalWorker) convInputs(plan *coeffenc.Plan, vs *valSet) ([]*bfv.Ciphertext, error) {
	e := wk.e
	s := plan.Shape
	sub := plan.SubFactor()
	hw := plan.EH * plan.EW

	// Resolve layer-geometry coordinates to the producing layer's value
	// keys, handling the implicit flatten when a feature map feeds a
	// fully-connected layer (Cin = C·H·W, H = W = 1).
	resolve := func(c, h, w int) (vkey, bool) {
		if s.Cin == vs.C && s.H == vs.H && s.W == vs.W {
			return vkey{c, h, w}, true
		}
		if s.H == 1 && s.W == 1 && s.Cin == vs.C*vs.H*vs.W {
			return vkey{c / (vs.H * vs.W), (c / vs.W) % vs.H, c % vs.W}, true
		}
		return vkey{}, false
	}
	if _, ok := resolve(0, 0, 0); !ok {
		return nil, fmt.Errorf("core: layer expects %dx%dx%d input but got %dx%dx%d",
			s.Cin, s.H, s.W, vs.C, vs.H, vs.W)
	}

	inputs := make([]*bfv.Ciphertext, plan.InBatches)
	errs := make([]error, plan.InBatches)
	wk.forEach(plan.InBatches, par.Options{MinGrain: 1}, func(ln *evalWorker, ib int) {
		ordered := make([]lwe.Ciphertext, plan.CB*hw)
		validity := make([]bool, plan.CB*hw)
		for i := range ordered {
			ordered[i] = e.zeroLWE()
		}
		for cl := 0; cl < plan.CB; cl++ {
			c := ib*plan.CB + cl
			if c >= s.Cin {
				break
			}
			for eh := 0; eh < plan.EH; eh++ {
				for ew := 0; ew < plan.EW; ew++ {
					h := eh*sub - s.Pad
					w := ew*sub - s.Pad
					if h < 0 || h >= s.H || w < 0 || w >= s.W {
						continue
					}
					key, _ := resolve(c, h, w)
					if v, ok := vs.vals[key]; ok {
						ordered[cl*hw+eh*plan.EW+ew] = v
						validity[cl*hw+eh*plan.EW+ew] = true
					}
				}
			}
		}
		ct, err := ln.packFBS(ordered, vs.pending, e.slotMask(validity))
		if err != nil {
			errs[ib] = err
			return
		}
		ct, err = ln.toCoeffs(ct)
		if err != nil {
			errs[ib] = err
			return
		}
		inputs[ib] = ct
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return inputs, nil
}

// convAccumulate runs Step ① on prepared coefficient-encoded inputs and
// returns the accumulator ciphertexts (one per output batch). Output
// batches are independent (each reads the shared inputs and writes its
// own accumulator), so they fan out across worker lanes.
func (wk *evalWorker) convAccumulate(q *qnn.QConv, plan *coeffenc.Plan, inputs []*bfv.Ciphertext) []*bfv.Ciphertext {
	e := wk.e
	k3d := q.Weights
	accs := make([]*bfv.Ciphertext, plan.OutBatches)
	// One output batch costs InBatches plaintext products (2·limbs·N
	// word multiplies each at the post level) plus the kernel encodes.
	cost := plan.InBatches * 2 * e.ctxP.Level() * e.Ctx.N
	wk.forEach(plan.OutBatches, par.Options{MinGrain: 1, ItemCost: cost}, func(ln *evalWorker, ob int) {
		var acc *bfv.Ciphertext
		for ib := 0; ib < plan.InBatches; ib++ {
			kv := plan.EncodeKernel(k3d, ib, ob)
			pm := ln.codP.LiftToMul(ln.codP.EncodeCoeffs(kv))
			if acc == nil {
				acc = ln.evP.MulPlain(inputs[ib], pm)
			} else {
				ln.evP.MulPlainAndAdd(inputs[ib], pm, acc)
				ln.stats.HAdd++
			}
			ln.stats.PMult++
		}
		// Bias: added at every valid output coefficient.
		biasVec := make([]int64, e.Ctx.N)
		for _, en := range plan.ValidCoeffs(ob) {
			biasVec[en.Coeff] = q.Bias[en.Cout]
		}
		acc = ln.evP.AddPlain(acc, ln.codP.EncodeCoeffs(biasVec))
		accs[ob] = acc
	})
	return accs
}

// convLayer runs the full loop for one quantized linear layer, returning
// the raw accumulators as LWE values with the layer's LUT pending.
func (wk *evalWorker) convLayer(q *qnn.QConv, vs *valSet) (*valSet, error) {
	e := wk.e
	plan, err := coeffenc.NewPlan(q.Shape, e.Ctx.N, coeffenc.AthenaOrder)
	if err != nil {
		return nil, err
	}
	inputs, err := wk.convInputs(plan, vs)
	if err != nil {
		return nil, err
	}
	accs := wk.convAccumulate(q, plan, inputs)
	out := &valSet{C: q.Shape.Cout, H: q.Shape.OutH(), W: q.Shape.OutW(), vals: make(map[vkey]lwe.Ciphertext)}
	for ob, acc := range accs {
		m, err := wk.extract(acc, plan.ValidCoeffs(ob))
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			out.vals[k] = v
		}
	}
	out.pending, err = e.lutFor(q)
	if err != nil {
		return nil, err
	}
	out.fn = q.Remap
	return out, nil
}

// addLWE returns a+b at modulus t (phase addition under the shared key).
func (e *Engine) addLWE(a, b lwe.Ciphertext) lwe.Ciphertext {
	m := e.tMod
	out := lwe.Ciphertext{A: make([]uint64, len(a.A)), Q: e.P.T}
	for i := range a.A {
		out.A[i] = m.Add(a.A[i], b.A[i])
	}
	out.B = m.Add(a.B, b.B)
	return out
}

// subLWE returns a−b at modulus t.
func (e *Engine) subLWE(a, b lwe.Ciphertext) lwe.Ciphertext {
	m := e.tMod
	out := lwe.Ciphertext{A: make([]uint64, len(a.A)), Q: e.P.T}
	for i := range a.A {
		out.A[i] = m.Sub(a.A[i], b.A[i])
	}
	out.B = m.Sub(a.B, b.B)
	return out
}
