package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// testNet builds the tiny deterministic conv→FC network used across the
// eval-keys tests.
func evalKeysTestNet() *qnn.QNetwork {
	rng := rand.New(rand.NewPCG(3, 4))
	mk := func(shape coeffenc.ConvShape, act qnn.Activation, mult float64) *qnn.QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &qnn.QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120}
	}
	return &qnn.QNetwork{
		Name: "evalkeys-test", InC: 1, InH: 4, InW: 4, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			// The 1/16 first-layer multiplier keeps activations ≤ 3, so the
			// 32-input FC accumulator stays well inside t/2 = 128.
			mk(coeffenc.ConvShape{H: 4, W: 4, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.FCShape(2*4*4, 3), qnn.ActNone, 1.0/4),
		}},
	}
}

// TestEvaluationEngineMatchesFullEngine exports eval keys from a full
// engine, rebuilds an evaluation-only engine from the wire bytes, and
// checks that the server-side engine produces ciphertexts the client
// decrypts to the same logits as a fully local run.
func TestEvaluationEngineMatchesFullEngine(t *testing.T) {
	p := TestParams()
	client, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := client.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	server, err := NewEvaluationEngineFromReader(p, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	net := evalKeysTestNet()
	x := qnn.NewIntTensor(1, 4, 4)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	in, err := client.EncryptInput(net, x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := server.EvaluateEncrypted(net, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.DecryptLogits(out)
	if err != nil {
		t.Fatal(err)
	}
	// The usual ±2 e_ms tolerance of single-image runs applies: the
	// server ran on uploaded keys, but the noise mechanics are unchanged.
	ref := net.ForwardInt(x).Data
	for i := range got {
		if d := got[i] - ref[i]; d < -2 || d > 2 {
			t.Fatalf("logit %d: evaluation engine %d, plaintext %d", i, got[i], ref[i])
		}
	}
}

// TestEvaluationEngineBatch runs the batched server entry point on an
// evaluation-only engine and checks each image's decrypted logits.
func TestEvaluationEngineBatch(t *testing.T) {
	p := TestParams()
	client, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := client.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	server, err := NewEvaluationEngineFromReader(p, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	net := evalKeysTestNet()
	rng := rand.New(rand.NewPCG(11, 13))
	const B = 3
	ins := make([]*EncryptedInput, B)
	xs := make([]*qnn.IntTensor, B)
	for b := 0; b < B; b++ {
		x := qnn.NewIntTensor(1, 4, 4)
		for i := range x.Data {
			x.Data[i] = int64(rng.IntN(8))
		}
		xs[b] = x
		ins[b], err = client.EncryptInput(net, x)
		if err != nil {
			t.Fatal(err)
		}
	}
	outs, err := server.EvaluateEncryptedBatch(net, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != B {
		t.Fatalf("got %d outputs, want %d", len(outs), B)
	}
	for b := range outs {
		got, err := client.DecryptLogits(outs[b])
		if err != nil {
			t.Fatal(err)
		}
		want := net.ForwardInt(xs[b]).Data
		for i := range got {
			// Batched runs allow the slightly wider e_ms tolerance the
			// repo's InferBatch tests use.
			if d := got[i] - want[i]; d < -3 || d > 3 {
				t.Fatalf("image %d logit %d: got %d, plaintext %d", b, i, got[i], want[i])
			}
		}
	}
}

// TestEvaluationEngineRefusesClientOps checks the typed error on
// secret-key operations.
func TestEvaluationEngineRefusesClientOps(t *testing.T) {
	p := TestParams()
	client, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := client.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	server, err := NewEvaluationEngineFromReader(p, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	net := evalKeysTestNet()
	if _, err := server.EncryptInput(net, qnn.NewIntTensor(1, 4, 4)); err != ErrNoSecretKey {
		t.Fatalf("EncryptInput: got %v, want ErrNoSecretKey", err)
	}
	if _, err := server.DecryptLogits(&EncryptedLogits{}); err != ErrNoSecretKey {
		t.Fatalf("DecryptLogits: got %v, want ErrNoSecretKey", err)
	}
}

// TestEvalKeysDeterministicEncoding pins the property the serving
// layer's content-addressed session IDs rely on: serializing the same
// key material twice yields identical bytes.
func TestEvalKeysDeterministicEncoding(t *testing.T) {
	eng, err := NewEngine(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := eng.WriteEvalKeys(&a); err != nil {
		t.Fatal(err)
	}
	if err := eng.WriteEvalKeys(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("eval-keys encoding is not deterministic")
	}
}

// TestEvalKeysMalformed feeds truncated and corrupted bundles to the
// decoder: every case must return an error (never panic or succeed).
func TestEvalKeysMalformed(t *testing.T) {
	p := TestParams()
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := eng.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	good := blob.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []float64{0, 0.01, 0.5, 0.99} {
			n := int(float64(len(good)) * frac)
			if _, err := mustCodec(t, p).ReadEvalKeys(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation to %d bytes: decoder accepted", n)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := mustCodec(t, p).ReadEvalKeys(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupted magic accepted")
		}
	})
	t.Run("wrong-params", func(t *testing.T) {
		p2 := p
		p2.LWEDim = 64
		if _, err := mustCodec(t, p2).ReadEvalKeys(bytes.NewReader(good)); err == nil {
			t.Fatal("parameter mismatch accepted")
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		// Flip one byte at a spread of offsets; the decoder must never
		// panic. (It may legitimately succeed when the flip lands in a
		// ciphertext coefficient that stays in range.)
		for off := 0; off < len(good); off += len(good)/64 + 1 {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("offset %d: panic %v", off, r)
					}
				}()
				_, _ = mustCodec(t, p).ReadEvalKeys(bytes.NewReader(bad))
			}()
		}
	})
}

// mustCodec builds an EvalKeyCodec or fails the test.
func mustCodec(t *testing.T, p Params) *EvalKeyCodec {
	t.Helper()
	c, err := NewEvalKeyCodec(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// flakyReaderAt fails every other read attempt with a transient error
// and caps each success at a small section, exercising both the
// retry-once and partial-progress resumption paths of ReadEvalKeysAt.
type flakyReaderAt struct {
	data  []byte
	calls int
}

func (f *flakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	f.calls++
	if f.calls%2 == 1 {
		return 0, errTransient
	}
	if off < 0 || off > int64(len(f.data)) {
		return 0, errTransient
	}
	if len(p) > 777 {
		p = p[:777] // force short reads so resumption is exercised
	}
	n := copy(p, f.data[off:])
	return n, nil
}

var errTransient = bytes.ErrTooLarge // any sentinel; never surfaced on success

// TestReadEvalKeysAt decodes the same bundle via the sequential reader
// and via a flaky chunked ReaderAt, and requires identical results.
func TestReadEvalKeysAt(t *testing.T) {
	p := TestParams()
	eng, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := eng.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	good := blob.Bytes()
	c := mustCodec(t, p)
	want, err := c.ReadEvalKeys(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadEvalKeysAt(&flakyReaderAt{data: good}, int64(len(good)))
	if err != nil {
		t.Fatalf("ReadEvalKeysAt over flaky reader: %v", err)
	}
	if got.PackDim != want.PackDim || len(got.PackKeys) != len(want.PackKeys) {
		t.Fatalf("bundle shape mismatch: %d/%d keys, dim %d/%d",
			len(got.PackKeys), len(want.PackKeys), got.PackDim, want.PackDim)
	}
	// Re-serializing through an engine built from each bundle must agree
	// byte for byte (the encoding is deterministic).
	e1, err := NewEvaluationEngine(p, want)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEvaluationEngine(p, got)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := e1.WriteEvalKeys(&b1); err != nil {
		t.Fatal(err)
	}
	if err := e2.WriteEvalKeys(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chunked decode disagrees with sequential decode")
	}
	// Truncated size must fail cleanly, not hang retrying.
	if _, err := c.ReadEvalKeysAt(&flakyReaderAt{data: good[:len(good)/2]}, int64(len(good)/2)); err == nil {
		t.Fatal("truncated chunked bundle accepted")
	}
}
