package core

import (
	"fmt"
	"math"

	"athena/internal/fbs"
	"athena/internal/lwe"
)

// SoftmaxConfig scales the three-step softmax of Section 3.2.3 so every
// intermediate stays inside the plaintext modulus:
//
//	step ① LUT_exp(x)  = round(e^(x·InScale) · ExpScale)
//	step ② sum         = Σ_i exp_i                (LWE additions)
//	       LUT_inv(y)  = round(InvScale / y)
//	step ③ prob_i·InvScale ≈ CMult(exp_i, inv)    (one ciphertext product)
type SoftmaxConfig struct {
	InScale  float64 // logit → real exponent scale
	ExpScale float64 // step ① output scale
	InvScale float64 // step ② output scale (also the final denominator)
	MaxIn    int64   // |logit| bound (for the range checks)
	Classes  int
}

// DefaultSoftmaxConfig sizes the demo for the engine's plaintext modulus.
func (e *Engine) DefaultSoftmaxConfig(classes int) SoftmaxConfig {
	// Keep exp values small enough that their sum stays below t/2, and
	// the final products below t/2 as well.
	half := float64(e.P.T) / 2
	expScale := (half - 16) / (math.E * math.E * float64(classes))
	if expScale > 64 {
		expScale = 64
	}
	return SoftmaxConfig{
		InScale:  0.25,
		ExpScale: expScale,
		InvScale: half - 16,
		MaxIn:    8,
		Classes:  classes,
	}
}

// SoftmaxEncrypted runs the paper's softmax decomposition fully under
// encryption on the given logits and returns the recovered probability
// estimates. It demonstrates the "Softmax alike" path of Section 3.2.3:
// two functional bootstrappings plus one ciphertext-ciphertext
// multiplication.
func (e *Engine) SoftmaxEncrypted(logits []int64, cfg SoftmaxConfig) ([]float64, error) {
	if len(logits) != cfg.Classes {
		return nil, fmt.Errorf("core: %d logits for %d classes", len(logits), cfg.Classes)
	}
	if cfg.Classes > e.P.LWEDim {
		return nil, fmt.Errorf("core: too many classes for one packing group")
	}
	for _, v := range logits {
		if v > cfg.MaxIn || v < -cfg.MaxIn {
			return nil, fmt.Errorf("core: logit %d outside ±%d", v, cfg.MaxIn)
		}
	}

	expFn := func(x int64) int64 {
		if x > cfg.MaxIn {
			x = cfg.MaxIn
		}
		if x < -cfg.MaxIn {
			x = -cfg.MaxIn
		}
		return int64(math.Round(math.Exp(float64(x)*cfg.InScale) * cfg.ExpScale))
	}
	maxSum := int64(float64(cfg.Classes) * math.Exp(float64(cfg.MaxIn)*cfg.InScale) * cfg.ExpScale)
	if maxSum >= int64(e.P.T/2) {
		return nil, fmt.Errorf("core: exp sum bound %d exceeds t/2", maxSum)
	}
	invFn := func(y int64) int64 {
		if y < 1 {
			y = 1
		}
		return int64(math.Round(cfg.InvScale / float64(y)))
	}

	// Encrypt the logits as trivial LWE values (the client-side input);
	// in the full pipeline these arrive as extracted accumulators.
	tm := e.Ctx.TMod
	in := make([]lwe.Ciphertext, cfg.Classes)
	for i, v := range logits {
		ct := e.zeroLWE()
		ct.B = tm.ReduceInt64(v)
		in[i] = ct
	}

	// The softmax pipeline runs on the engine's top-level worker; its
	// pack/FBS stages fan out internally.
	w0 := e.w0
	defer e.flushStats()

	// Step ①: exp LUT over the packed logits, then back to LWE.
	expLUT, err := fbs.NewEvaluator(e.ctxF, fbs.NewLUT(e.P.T, expFn))
	if err != nil {
		return nil, err
	}
	exps, err := w0.batchLUT(in, expLUT)
	if err != nil {
		return nil, err
	}

	// Step ②: homomorphic sum, then the inverse LUT on the replicated
	// sum so the division can happen slot-wise.
	sum := e.zeroLWE()
	for _, ct := range exps {
		sum = e.addLWE(sum, ct)
		w0.stats.LWEAdds++
	}
	sums := make([]lwe.Ciphertext, cfg.Classes)
	for i := range sums {
		sums[i] = sum
	}
	invLUT, err := fbs.NewEvaluator(e.ctxF, fbs.NewLUT(e.P.T, invFn))
	if err != nil {
		return nil, err
	}
	maskV := make([]bool, cfg.Classes)
	for i := range maskV {
		maskV[i] = true
	}
	invCT, err := w0.packFBS(sums, invLUT, e.slotMask(maskV))
	if err != nil {
		return nil, err
	}
	expCT, err := w0.packFBS(exps, nil, nil)
	if err != nil {
		return nil, err
	}

	// Step ③: CMult — prob_i · InvScale ≈ exp_i · round(InvScale/sum).
	prodCT, err := w0.evP.Mul(expCT, invCT)
	if err != nil {
		return nil, err
	}
	w0.stats.CMult++

	pt := e.dec.Decrypt(prodCT)
	cod := e.cod
	slots := cod.DecodeSlots(pt)
	out := make([]float64, cfg.Classes)
	for i := range out {
		out[i] = float64(slots[i]) / cfg.InvScale
	}
	return out, nil
}

// SoftmaxPlain is the matching plaintext reference (identical integer
// arithmetic) used by tests and callers that need the exact expected
// output of SoftmaxEncrypted.
func SoftmaxPlain(logits []int64, cfg SoftmaxConfig) []float64 {
	exps := make([]int64, len(logits))
	var sum int64
	for i, v := range logits {
		exps[i] = int64(math.Round(math.Exp(float64(v)*cfg.InScale) * cfg.ExpScale))
		sum += exps[i]
	}
	if sum < 1 {
		sum = 1
	}
	inv := int64(math.Round(cfg.InvScale / float64(sum)))
	out := make([]float64, len(logits))
	for i := range out {
		out[i] = float64(exps[i]*inv) / cfg.InvScale
	}
	return out
}
