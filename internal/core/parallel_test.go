package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fingerprint files")

// gomaxprocsMatrix is the worker-count sweep the CI matrix also runs;
// 1 pins the serial path, 2 the minimal fan-out, 8 an oversubscribed
// fan-out (more workers than most operator loops have items).
var gomaxprocsMatrix = []int{1, 2, 8}

func detNet() *qnn.QNetwork {
	return &qnn.QNetwork{
		Name: "par-det", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 301),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 302),
		}},
	}
}

// TestEvaluateBitIdenticalAcrossGOMAXPROCS is the engine-level
// determinism contract of the operator fan-out: a fresh same-seed engine
// must produce byte-identical encrypted logits at every worker count,
// and those bytes must match the checked-in fingerprint (so every leg of
// the CI GOMAXPROCS matrix asserts equality against the same value, not
// just self-consistency). Regenerate with -update after a change that
// legitimately alters ciphertext bytes.
func TestEvaluateBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("GOMAXPROCS sweep builds fresh engines; run without -short")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	net := detNet()
	x := randInput(1, 6, 6, 7, 303)
	want := net.ForwardInt(x).Data

	var blob []byte
	for _, procs := range gomaxprocsMatrix {
		// Set the worker count before key generation so the sweep also
		// covers the (parallel) engine construction.
		runtime.GOMAXPROCS(procs)
		e, err := NewEngine(TestParams())
		if err != nil {
			t.Fatal(err)
		}
		in, err := e.EncryptInput(net, x)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.EvaluateEncrypted(net, in)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.WriteEncryptedLogits(out, &buf); err != nil {
			t.Fatal(err)
		}
		logits, err := e.DecryptLogits(out)
		if err != nil {
			t.Fatal(err)
		}
		compareLogits(t, logits, want, 2)
		if blob == nil {
			blob = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), blob) {
			t.Fatalf("GOMAXPROCS=%d: encrypted logits differ from the serial result", procs)
		}
	}

	sum := sha256.Sum256(blob)
	got := hex.EncodeToString(sum[:])
	golden := filepath.Join("testdata", "evaluate_fingerprint.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantSum, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fingerprint (regenerate with -update): %v", err)
	}
	if got != strings.TrimSpace(string(wantSum)) {
		t.Fatalf("encrypted-logits fingerprint %s != golden %s (run with -update if the change is intended)",
			got, strings.TrimSpace(string(wantSum)))
	}
}

// TestInferBatchBitIdenticalAcrossGOMAXPROCS checks the batched path:
// fresh same-seed engines at 1, 2, and 8 workers must produce exactly
// the same logits for every image (not merely within noise tolerance —
// the fixed partitioning and ordered combines make the whole pipeline
// an exact function of the inputs).
func TestInferBatchBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("GOMAXPROCS sweep builds fresh engines; run without -short")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	net := detNet()
	xs := []*qnn.IntTensor{
		randInput(1, 6, 6, 7, 304),
		randInput(1, 6, 6, 7, 305),
	}

	var want [][]int64
	for _, procs := range gomaxprocsMatrix {
		runtime.GOMAXPROCS(procs)
		e, err := NewEngine(TestParams())
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.InferBatch(net, xs)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("GOMAXPROCS=%d: image %d logits %v != serial %v", procs, i, got[i], want[i])
				}
			}
		}
	}
}

// TestInferBatchSingleImage pins the batch-of-1 edge case: the shared
// materialization degenerates to per-image chunks and must still agree
// with the plaintext reference.
func TestInferBatchSingleImage(t *testing.T) {
	e := testEngine(t)
	net := detNet()
	x := randInput(1, 6, 6, 7, 306)
	want := net.ForwardInt(x).Data
	got, err := e.InferBatch(net, []*qnn.IntTensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("batch of 1 returned %d results", len(got))
	}
	compareLogits(t, got[0], want, 3)
}

// TestInferBatchOverflowsSlotCapacity drives the batch past the FBS slot
// capacity: 5 images × 72 pending activations = 360 values over N=128
// slots, forcing materializeBatch to split into 3 chunks that fan out
// across worker lanes (images land mid-chunk, so the chunk boundaries
// cross image boundaries).
func TestInferBatchOverflowsSlotCapacity(t *testing.T) {
	e := testEngine(t)
	net := detNet()
	const batch = 5
	perImage := 2 * 6 * 6 // Cout × H × W pending activations per image
	if batch*perImage <= 2*e.Ctx.N {
		t.Fatalf("test vector too small: %d values for %d slots", batch*perImage, e.Ctx.N)
	}
	xs := make([]*qnn.IntTensor, batch)
	wants := make([][]int64, batch)
	for i := range xs {
		xs[i] = randInput(1, 6, 6, 7, uint64(310+i))
		wants[i] = net.ForwardInt(xs[i]).Data
	}
	got, err := e.InferBatch(net, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		compareLogits(t, got[i], wants[i], 3)
	}
}

// TestInferBatchMixedValidityMasks exercises structural zeros in the
// parallel pipeline: a padded convolution (mixed-validity convInputs
// masks) followed by a max-pool (batchLUT chunks, scaled-domain
// materialization) across a batch. Run under -race in CI, this is the
// canary for mask staging buffers shared between worker lanes.
func TestInferBatchMixedValidityMasks(t *testing.T) {
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "par-mask", InC: 1, InH: 4, InW: 4, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 4, W: 4, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 320),
			&qnn.QMaxPool{K: 2},
			tinyConv(coeffenc.FCShape(2*2*2, 4), qnn.ActNone, 1.0/8, 321),
		}},
	}
	xs := []*qnn.IntTensor{
		randInput(1, 4, 4, 7, 322),
		randInput(1, 4, 4, 7, 323),
	}
	got, err := e.InferBatch(net, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := net.ForwardInt(xs[i]).Data
		compareLogits(t, got[i], want, 3)
	}
}
