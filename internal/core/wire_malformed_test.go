package core

import (
	"bytes"
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// malformedWireNet builds a tiny network plus a serialized input bundle
// for corruption tests against the client→server trust boundary.
func malformedWireNet(t *testing.T) (*Engine, *qnn.QNetwork, []byte) {
	t.Helper()
	e := testEngine(t)
	net := &qnn.QNetwork{
		Name: "malformed", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 81),
		}},
	}
	in, err := e.EncryptInput(net, randInput(1, 6, 6, 7, 82))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteEncryptedInput(in, &buf); err != nil {
		t.Fatal(err)
	}
	return e, net, buf.Bytes()
}

// Truncated input bundles must fail with an error at the server, never
// panic or hand back a partially read bundle.
func TestWireInputTruncation(t *testing.T) {
	e, net, blob := malformedWireNet(t)
	// Step through word-ish boundaries plus a ragged tail; decoding the
	// full blob per prefix makes an exhaustive sweep slow on large N.
	for l := 0; l < len(blob); l += 13 {
		if _, err := e.ReadEncryptedInput(net, bytes.NewReader(blob[:l])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", l, len(blob))
		}
	}
	if _, err := e.ReadEncryptedInput(net, bytes.NewReader(blob[:len(blob)-1])); err == nil {
		t.Fatal("bundle short one byte accepted")
	}
}

// Bit-flipped input bundles must decode to an error or to ciphertexts
// that still satisfy the bfv range invariants — never a panic.
func TestWireInputBitFlips(t *testing.T) {
	e, net, blob := malformedWireNet(t)
	// Cover the bundle header and the first ciphertext header densely,
	// then sample payload bytes; the embedded bfv payload is also covered
	// by bfv's own bit-flip and fuzz tests.
	for off := 0; off < len(blob); off++ {
		if off > 192 && off%29 != 0 {
			continue
		}
		mut := append([]byte(nil), blob...)
		mut[off] ^= 1 << (off % 8)
		in, err := e.ReadEncryptedInput(net, bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A surviving decode (flips in ignorable padding would qualify, if
		// any existed) must still hold in-range polynomials.
		for _, ct := range in.inputs {
			for _, p := range [][][]uint64{ct.C0.Coeffs, ct.C1.Coeffs} {
				for i, limb := range p {
					q := e.Ctx.RingQ.Moduli[i].Q
					for _, c := range limb {
						if c >= q {
							t.Fatalf("bit flip at offset %d decoded out-of-range limb %d", off, i)
						}
					}
				}
			}
		}
	}
}

// Garbage prefixes (wrong magic, random bytes, empty stream) must all be
// rejected with errors.
func TestWireInputGarbage(t *testing.T) {
	e, net, blob := malformedWireNet(t)
	cases := map[string][]byte{
		"empty":       {},
		"zeros":       make([]byte, 64),
		"text":        []byte("definitely not a ciphertext bundle"),
		"magic only":  blob[:8],
		"header only": blob[:24],
	}
	for name, data := range cases {
		if _, err := e.ReadEncryptedInput(net, bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
