package core

import (
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// TestLevelsScheduleProperties sweeps explicit (FBSLevel, PostLevel)
// settings — including zero, negative, and beyond-chain values — and
// checks the resolved schedule invariants: the FBS level lands in
// [2, QiNum], the post level in [1, FBSLevel], in-range explicit values
// are honored verbatim, and zeros take the documented defaults.
func TestLevelsScheduleProperties(t *testing.T) {
	base := TestParams()
	for fs := -3; fs <= base.QiNum+3; fs++ {
		for ps := -3; ps <= base.QiNum+3; ps++ {
			p := base
			p.FBSLevel, p.PostLevel = fs, ps
			fbsL, postL := p.Levels()
			if fbsL < 2 || fbsL > p.QiNum {
				t.Fatalf("FBSLevel=%d: resolved fbsL %d outside [2, %d]", fs, fbsL, p.QiNum)
			}
			if postL < 1 || postL > fbsL {
				t.Fatalf("FBSLevel=%d PostLevel=%d: resolved postL %d outside [1, %d]", fs, ps, postL, fbsL)
			}
			if fs >= 2 && fs <= p.QiNum && fbsL != fs {
				t.Fatalf("in-range FBSLevel=%d not honored: got %d", fs, fbsL)
			}
			if ps >= 1 && ps <= fbsL && ps != 0 && postL != ps {
				t.Fatalf("in-range PostLevel=%d not honored: got %d (fbsL %d)", ps, postL, fbsL)
			}
		}
	}
	fbsL, postL := base.Levels()
	if fbsL != base.QiNum-1 || postL != 2 {
		t.Fatalf("defaults: got (%d, %d), want (%d, 2)", fbsL, postL, base.QiNum-1)
	}
}

// TestLevelScheduleInferenceEquivalence runs the same network and input
// through an engine with the default dropping schedule and one with
// dropping disabled (all stages at the full chain). Both must land on
// the exact plaintext reference within the usual rounding tolerance —
// limb dropping is a noise/performance trade, never a semantic one.
func TestLevelScheduleInferenceEquivalence(t *testing.T) {
	net := &qnn.QNetwork{
		Name: "level-equiv", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			tinyConv(coeffenc.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16, 21),
			tinyConv(coeffenc.FCShape(2*6*6, 4), qnn.ActNone, 1.0/8, 22),
		}},
	}
	x := randInput(1, 6, 6, 7, 23)
	want := net.ForwardInt(x).Data

	pFull := TestParams()
	pFull.FBSLevel, pFull.PostLevel = pFull.QiNum, pFull.QiNum
	full, err := NewEngine(pFull)
	if err != nil {
		t.Fatal(err)
	}
	gotFull, err := full.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, gotFull, want, 2)

	dropped := testEngine(t)
	gotDropped, err := dropped.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	compareLogits(t, gotDropped, want, 2)
}
