package athena

import (
	"math/rand/v2"
	"testing"
)

// Public-API smoke tests: everything a downstream user touches through
// the facade must work without reaching into internal packages.

func TestFacadeParamsPresets(t *testing.T) {
	for _, p := range []Params{TestParams(), MediumParams(), FullParams()} {
		if p.LogN < 7 || p.T < 257 || p.LWEDim < 32 {
			t.Fatalf("preset looks wrong: %+v", p)
		}
		if _, err := p.BFVParameters(); err != nil {
			t.Fatal(err)
		}
	}
	if FullParams().LogN != 15 || FullParams().T != 65537 {
		t.Fatal("full params are not the paper's setting")
	}
}

func TestFacadeModelZoo(t *testing.T) {
	for _, name := range BenchmarkModels {
		net, err := ModelByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if net.Name == "" {
			t.Fatal("unnamed model")
		}
	}
	if len(SynthDigits(10, 1).Samples) != 10 {
		t.Fatal("digits dataset wrong size")
	}
	if len(SynthCIFAR(10, 1).Samples) != 10 {
		t.Fatal("cifar dataset wrong size")
	}
}

func TestFacadeTrainQuantizeSimulate(t *testing.T) {
	net := NewDigitNet14(1)
	_ = net
	qn, err := SpecModel("MNIST", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CompileTrace(qn, FullParams())
	if err != nil {
		t.Fatal(err)
	}
	r := Simulate(tr, AthenaHW())
	if r.TimeMS <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("degenerate simulation: %+v", r)
	}
}

func TestFacadeEncryptedRoundTrip(t *testing.T) {
	eng, err := NewEngine(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	net := benchTinyNet()
	rng := rand.New(rand.NewPCG(5, 5))
	x := NewIntTensor(1, 6, 6)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	got, err := eng.Infer(net, x)
	if err != nil {
		t.Fatal(err)
	}
	want := net.ForwardInt(x).Data
	if len(got) != len(want) {
		t.Fatal("logit count mismatch")
	}
	for i := range got {
		d := got[i] - want[i]
		if d < -2 || d > 2 {
			t.Fatalf("logit %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestFacadeQuantizeFlow(t *testing.T) {
	train := SynthDigits(300, 9)
	net, err := ModelByName("MNIST", 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	Train(net, train, cfg)
	qc := DefaultQuantConfig()
	qc.AccCap = 29000
	qn, err := Quantize(net, train, qc)
	if err != nil {
		t.Fatal(err)
	}
	if acc := qn.AccuracyInt(train); acc < 0.5 {
		t.Fatalf("quantized train accuracy %.2f too low", acc)
	}
}
